//! Robustness tests of the wire protocol: torn lines, truncated frames,
//! oversized requests, garbage bytes and interleaved clients must all map
//! to typed errors — the framing layer never panics and the daemon never
//! hangs or dies on hostile input.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_serve::protocol::{
    encode_request, parse_reply, parse_request, read_frame, write_request, ProtocolError, Reply,
    Request, PROTOCOL_VERSION,
};
use gis_serve::{Server, ServerConfig};
use proptest::prelude::*;
use std::io::{BufReader, Cursor, Write};
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Pure framing layer
// ---------------------------------------------------------------------------

#[test]
fn clean_end_of_stream_is_none() {
    let mut reader = Cursor::new(Vec::<u8>::new());
    assert_eq!(read_frame(&mut reader, 1024).unwrap(), None);
}

#[test]
fn terminated_line_roundtrips_and_strips_crlf() {
    let mut reader = Cursor::new(b"{\"v\":1}\n".to_vec());
    assert_eq!(read_frame(&mut reader, 1024).unwrap().unwrap(), "{\"v\":1}");

    let mut reader = Cursor::new(b"{\"v\":1}\r\nnext\n".to_vec());
    assert_eq!(read_frame(&mut reader, 1024).unwrap().unwrap(), "{\"v\":1}");
    assert_eq!(read_frame(&mut reader, 1024).unwrap().unwrap(), "next");
    assert_eq!(read_frame(&mut reader, 1024).unwrap(), None);
}

#[test]
fn stream_ending_mid_line_is_a_torn_frame() {
    let mut reader = Cursor::new(b"{\"v\":1,\"request\"".to_vec());
    assert_eq!(read_frame(&mut reader, 1024), Err(ProtocolError::TornFrame));
}

#[test]
fn line_over_the_limit_is_oversized_not_unbounded() {
    // A line longer than the cap errors without buffering the rest.
    let mut line = vec![b'a'; 2048];
    line.push(b'\n');
    let mut reader = Cursor::new(line);
    assert_eq!(
        read_frame(&mut reader, 1024),
        Err(ProtocolError::Oversized { limit: 1024 })
    );
}

#[test]
fn line_exactly_at_the_limit_fits() {
    // `max_bytes` bounds the buffered line including its terminator.
    let mut line = vec![b'x'; 1023];
    line.push(b'\n');
    let mut reader = Cursor::new(line);
    assert_eq!(read_frame(&mut reader, 1024).unwrap().unwrap().len(), 1023);
}

#[test]
fn invalid_utf8_is_malformed_not_a_panic() {
    let mut reader = Cursor::new(b"\xff\xfe\xfd\n".to_vec());
    match read_frame(&mut reader, 1024) {
        Err(ProtocolError::MalformedJson { .. }) => {}
        other => panic!("expected MalformedJson, got {other:?}"),
    }
}

#[test]
fn garbage_json_is_malformed() {
    for garbage in ["", "not json", "{", "[1,2", "{\"v\":\"one\"}", "null"] {
        match parse_request(garbage) {
            Err(ProtocolError::MalformedJson { .. }) => {}
            other => panic!("{garbage:?}: expected MalformedJson, got {other:?}"),
        }
    }
}

#[test]
fn wrong_protocol_version_is_rejected_with_the_offending_version() {
    let line = format!("{{\"v\":{},\"request\":\"Status\"}}", PROTOCOL_VERSION + 41);
    assert_eq!(
        parse_request(&line),
        Err(ProtocolError::UnsupportedVersion {
            got: PROTOCOL_VERSION + 41
        })
    );
}

#[test]
fn request_frames_roundtrip() {
    for request in [Request::Status, Request::Shutdown] {
        let line = encode_request(&request);
        assert!(line.ends_with('\n'));
        assert_eq!(parse_request(line.trim_end()).unwrap(), request);
    }
}

#[test]
fn error_codes_and_fatality_are_stable() {
    let torn = ProtocolError::TornFrame;
    let oversized = ProtocolError::Oversized { limit: 7 };
    let io = ProtocolError::Io {
        detail: "x".to_string(),
    };
    let malformed = ProtocolError::MalformedJson {
        detail: "x".to_string(),
    };
    let version = ProtocolError::UnsupportedVersion { got: 2 };
    // Framing errors leave the stream position undefined: fatal. Content
    // errors are line-delimited: the connection survives.
    assert!(torn.is_fatal() && oversized.is_fatal() && io.is_fatal());
    assert!(!malformed.is_fatal() && !version.is_fatal());
    assert_eq!(torn.code(), "torn-frame");
    assert_eq!(oversized.code(), "oversized-request");
    assert_eq!(io.code(), "io");
    assert_eq!(malformed.code(), "malformed-json");
    assert_eq!(version.code(), "unsupported-version");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through the framing layer: never a panic, and a
    /// successfully framed line never contains a terminator.
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(
        raw in prop::collection::vec(0u32..256, 0..300),
        max in 1usize..128,
    ) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let mut reader = Cursor::new(bytes);
        loop {
            match read_frame(&mut reader, max) {
                Ok(None) => break,
                Ok(Some(line)) => {
                    prop_assert!(!line.contains('\n'));
                    prop_assert!(line.len() <= max);
                }
                // Any typed error is acceptable; fatal ones end the stream.
                Err(e) => {
                    prop_assert!(!e.code().is_empty());
                    if e.is_fatal() {
                        break;
                    }
                }
            }
        }
    }

    /// Arbitrary near-JSON text through the parsers: typed errors only.
    #[test]
    fn parsers_never_panic_on_mangled_frames(
        raw in prop::collection::vec(0u32..128, 0..120),
        cut in 0usize..200,
    ) {
        // Mangle a valid frame: truncate it and splice in random ASCII.
        let valid = encode_request(&Request::Status);
        let keep = cut.min(valid.len());
        let mut mangled = valid[..keep].to_string();
        mangled.extend(raw.iter().map(|&b| (b as u8) as char));
        let _ = parse_request(&mangled);
        let _ = parse_reply(&mangled);
    }
}

// ---------------------------------------------------------------------------
// Live server under hostile clients
// ---------------------------------------------------------------------------

fn start_server(config: ServerConfig) -> String {
    let server = Server::bind(config).expect("server binds");
    let addr = server.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || server.run());
    addr
}

/// Connects raw, consumes the `Hello` line, returns (reader, writer).
fn raw_connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let hello = read_frame(&mut reader, 1 << 20)
        .expect("hello")
        .expect("hello line");
    match parse_reply(&hello).expect("hello parses") {
        Reply::Hello { protocol, .. } => assert_eq!(protocol, PROTOCOL_VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }
    (reader, writer)
}

fn read_one_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    let line = read_frame(reader, 1 << 20)
        .expect("reply")
        .expect("reply line");
    parse_reply(&line).expect("reply parses")
}

#[test]
fn garbage_line_gets_typed_error_and_connection_survives() {
    let addr = start_server(ServerConfig::default());
    let (mut reader, mut writer) = raw_connect(&addr);

    writer.write_all(b"complete garbage\n").expect("write");
    writer.flush().expect("flush");
    match read_one_reply(&mut reader) {
        Reply::Error { code, .. } => assert_eq!(code, "malformed-json"),
        other => panic!("expected Error, got {other:?}"),
    }

    // The connection is still usable after a content error.
    write_request(&mut writer, &Request::Status).expect("status request");
    match read_one_reply(&mut reader) {
        Reply::Status { .. } => {}
        other => panic!("expected Status, got {other:?}"),
    }

    write_request(&mut writer, &Request::Shutdown).expect("shutdown request");
}

#[test]
fn wrong_version_frame_gets_typed_error_and_connection_survives() {
    let addr = start_server(ServerConfig::default());
    let (mut reader, mut writer) = raw_connect(&addr);

    writer
        .write_all(b"{\"v\":99,\"request\":\"Status\"}\n")
        .expect("write");
    writer.flush().expect("flush");
    match read_one_reply(&mut reader) {
        Reply::Error { code, .. } => assert_eq!(code, "unsupported-version"),
        other => panic!("expected Error, got {other:?}"),
    }

    write_request(&mut writer, &Request::Status).expect("status request");
    match read_one_reply(&mut reader) {
        Reply::Status { .. } => {}
        other => panic!("expected Status, got {other:?}"),
    }

    write_request(&mut writer, &Request::Shutdown).expect("shutdown request");
}

#[test]
fn oversized_request_gets_typed_error_and_connection_closes() {
    let addr = start_server(ServerConfig {
        max_request_bytes: 1024,
        ..ServerConfig::default()
    });
    let (mut reader, mut writer) = raw_connect(&addr);

    let mut line = vec![b'a'; 4096];
    line.push(b'\n');
    writer.write_all(&line).expect("write");
    writer.flush().expect("flush");
    match read_one_reply(&mut reader) {
        Reply::Error { code, .. } => assert_eq!(code, "oversized-request"),
        other => panic!("expected Error, got {other:?}"),
    }
    // Framing errors are fatal: the server closes the connection.
    assert_eq!(read_frame(&mut reader, 1 << 20).expect("eof"), None);

    let (_reader, mut writer) = raw_connect(&addr);
    write_request(&mut writer, &Request::Shutdown).expect("shutdown request");
}

#[test]
fn truncated_frame_gets_torn_frame_error_and_connection_closes() {
    let addr = start_server(ServerConfig::default());
    let (mut reader, writer) = raw_connect(&addr);

    // Half a request, then the write side dies — a peer killed mid-write.
    (&writer).write_all(b"{\"v\":1,\"request\"").expect("write");
    (&writer).flush().expect("flush");
    writer
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    match read_one_reply(&mut reader) {
        Reply::Error { code, .. } => assert_eq!(code, "torn-frame"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert_eq!(read_frame(&mut reader, 1 << 20).expect("eof"), None);

    let (_reader, mut writer) = raw_connect(&addr);
    write_request(&mut writer, &Request::Shutdown).expect("shutdown request");
}

#[test]
fn invalid_job_gets_typed_error_and_connection_survives() {
    let addr = start_server(ServerConfig::default());
    let (mut reader, mut writer) = raw_connect(&addr);

    // Well-formed frame, invalid job: unknown suite name.
    writer
        .write_all(
            concat!(
                "{\"v\":1,\"request\":{\"Submit\":{\"job\":{",
                "\"problem\":{\"Suite\":{\"suite\":\"bogus\"}},",
                "\"estimators\":[],\"master_seed\":1,\"policy\":null}}}}\n"
            )
            .as_bytes(),
        )
        .expect("write");
    writer.flush().expect("flush");
    match read_one_reply(&mut reader) {
        Reply::Error { code, .. } => assert_eq!(code, "bad-job"),
        other => panic!("expected Error, got {other:?}"),
    }

    write_request(&mut writer, &Request::Status).expect("status request");
    match read_one_reply(&mut reader) {
        Reply::Status { status } => assert_eq!(status.cells_executed, 0),
        other => panic!("expected Status, got {other:?}"),
    }

    write_request(&mut writer, &Request::Shutdown).expect("shutdown request");
}

#[test]
fn interleaved_clients_are_framed_independently() {
    let addr = start_server(ServerConfig::default());
    let (mut reader_a, mut writer_a) = raw_connect(&addr);
    let (mut reader_b, mut writer_b) = raw_connect(&addr);

    // Client A writes half a request and stalls...
    let full = encode_request(&Request::Status);
    let (head, tail) = full.split_at(full.len() / 2);
    writer_a.write_all(head.as_bytes()).expect("half write");
    writer_a.flush().expect("flush");

    // ...client B completes a whole exchange in the meantime.
    write_request(&mut writer_b, &Request::Status).expect("b request");
    match read_one_reply(&mut reader_b) {
        Reply::Status { .. } => {}
        other => panic!("expected Status for b, got {other:?}"),
    }

    // A finishes its line; its connection was unaffected by B's traffic.
    writer_a.write_all(tail.as_bytes()).expect("tail write");
    writer_a.flush().expect("flush");
    match read_one_reply(&mut reader_a) {
        Reply::Status { .. } => {}
        other => panic!("expected Status for a, got {other:?}"),
    }

    write_request(&mut writer_a, &Request::Shutdown).expect("shutdown request");
}

#[test]
fn random_garbage_lines_never_kill_the_server() {
    let addr = start_server(ServerConfig::default());

    // A deterministic junk generator (no RNG dependency in this crate).
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for round in 0..32 {
        let (mut reader, mut writer) = raw_connect(&addr);
        let len = (next() % 200) as usize;
        let mut junk: Vec<u8> = (0..len)
            .map(|_| (next() % 256) as u8)
            // Keep the junk on one line so the exchange stays framed.
            .map(|b| if b == b'\n' { b'x' } else { b })
            .collect();
        junk.push(b'\n');
        writer.write_all(&junk).expect("junk write");
        writer.flush().expect("flush");

        // The server answers every line with exactly one typed reply (an
        // Error for junk) and never crashes or hangs.
        match read_one_reply(&mut reader) {
            Reply::Error { code, .. } => assert!(!code.is_empty(), "round {round}"),
            other => panic!("round {round}: expected Error, got {other:?}"),
        }

        // Probe liveness on a fresh request over the same connection.
        write_request(&mut writer, &Request::Status).expect("status request");
        match read_one_reply(&mut reader) {
            Reply::Status { .. } => {}
            other => panic!("round {round}: expected Status, got {other:?}"),
        }
    }

    let (_reader, mut writer) = raw_connect(&addr);
    write_request(&mut writer, &Request::Shutdown).expect("shutdown request");
}
