//! Kill-and-resume integration test against the real `gis-serve` binary:
//! SIGKILL the daemon mid-sweep, restart it on the same journal, reconnect
//! and resubmit — the final rows must be bit-identical to an uninterrupted
//! run, and every cell journaled before the kill must be served from cache.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_serve::{Client, ClientError, EstimatorSpec, JobSpec, ProblemSpec, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("gis_serve_tests")
        .join(format!("kill_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// A 14-cell job (7 fast-suite problems × 2 estimators) that is cheap per
/// cell but has enough cells to kill the daemon mid-sweep.
fn job() -> JobSpec {
    JobSpec {
        problem: ProblemSpec::Suite {
            suite: "fast".to_string(),
        },
        estimators: EstimatorSpec::standard().into_iter().take(2).collect(),
        master_seed: 424242,
        policy: None,
        warm_start: None,
        deadline_ms: None,
    }
}

/// Launches the daemon binary with `--journal` and `--port-file`, waits
/// for the port file to appear and returns (child, address).
fn spawn_daemon(journal: &Path, port_file: &Path) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_gis-serve"))
        .arg("--journal")
        .arg(journal)
        .arg("--port-file")
        .arg(port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(port_file) {
            let line = contents.trim();
            if !line.is_empty() {
                break line.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

#[test]
fn sigkill_mid_sweep_then_restart_serves_bit_identical_rows() {
    let dir = scratch_dir();
    let journal = dir.join("journal.jsonl");
    let port_file = dir.join("port");
    let _ = std::fs::remove_file(&journal);

    // Uninterrupted reference run, in-process and journal-free: the rows
    // the killed-and-resumed daemon must reproduce bit for bit.
    let reference_server = Server::bind(ServerConfig::default()).expect("reference server binds");
    let reference_addr = reference_server.local_addr().expect("addr").to_string();
    std::thread::spawn(move || reference_server.run());
    let mut reference_client = Client::connect(&reference_addr).expect("reference connect");
    let reference = reference_client
        .submit(&job(), &mut |_| {})
        .expect("reference run");
    reference_client.shutdown().expect("reference shutdown");
    assert_eq!(reference.cells_executed, 14);

    // First daemon lifetime: SIGKILL it mid-sweep, after the 5th streamed
    // cell. Every streamed cell is journaled before it is streamed
    // (durability before visibility), so at least 5 cells survive.
    let (mut child, addr) = spawn_daemon(&journal, &port_file);
    let mut client = Client::connect(&addr).expect("client connects");
    let kill_after = 5usize;
    let mut streamed_before_kill = 0usize;
    let result = client.submit(&job(), &mut |cell| {
        streamed_before_kill = cell.completed_cells;
        if cell.completed_cells == kill_after {
            // SIGKILL on unix: no cleanup, no journal flush beyond what is
            // already durable.
            child.kill().expect("daemon killed");
        }
    });
    match result {
        Err(ClientError::Io { .. } | ClientError::Protocol { .. }) => {}
        other => panic!("expected the killed daemon to drop the stream, got {other:?}"),
    }
    assert!(streamed_before_kill >= kill_after);
    child.wait().expect("daemon reaped");

    // Second daemon lifetime on the same journal: the replayed cells are
    // served from cache, the remainder computed fresh, and the assembled
    // report is bit-identical to the uninterrupted reference.
    let (mut child, addr) = spawn_daemon(&journal, &port_file);
    let mut client = Client::connect(&addr).expect("client reconnects");
    let resumed = client.submit(&job(), &mut |_| {}).expect("resumed run");
    assert!(
        resumed.cells_cached >= kill_after,
        "only {} of >= {kill_after} journaled cells were cached",
        resumed.cells_cached
    );
    assert_eq!(resumed.cells_cached + resumed.cells_executed, 14);
    assert_eq!(resumed.report, reference.report);

    // A third submission is now fully cached — the journal caught up.
    let replayed = client.submit(&job(), &mut |_| {}).expect("cached run");
    assert_eq!(replayed.cells_cached, 14);
    assert_eq!(replayed.report, reference.report);

    client.shutdown().expect("clean shutdown");
    child.wait().expect("daemon exits after shutdown");

    let _ = std::fs::remove_dir_all(&dir);
}
