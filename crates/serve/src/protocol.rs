//! Wire protocol of the yield-analysis daemon: JSON-lines frames over TCP.
//!
//! Every message — request or reply — is one line of JSON terminated by
//! `\n`, wrapped in a protocol-versioned frame (`{"v": 1, ...}`). The
//! framing layer is deliberately paranoid: reads are bounded
//! ([`read_frame`] never buffers more than the configured limit plus one
//! byte), a line missing its terminator is a [`ProtocolError::TornFrame`]
//! (the signature of a peer killed mid-write), and every malformed input
//! maps to a typed [`ProtocolError`] — never a panic, never an unbounded
//! read. This mirrors the torn/stale-line hardening of the sweep
//! checkpoint loader in `gis_core::sweep`.

use crate::job::JobSpec;
use gis_core::{AnalysisReport, MethodReport};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Read, Write};

/// Version of the wire protocol. A frame carrying any other version is
/// rejected with [`ProtocolError::UnsupportedVersion`] instead of being
/// misread under the current schema.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on the size of one request line, in bytes. Replies (which
/// carry whole analysis reports) use [`DEFAULT_MAX_REPLY_BYTES`] instead.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// Default cap on the size of one reply line, in bytes — sized for a full
/// [`AnalysisReport`] of a large sweep while still bounding a client's
/// memory against a misbehaving server.
pub const DEFAULT_MAX_REPLY_BYTES: usize = 256 << 20;

/// One client request, inside a [`RequestFrame`].
// Wire enums mirror the JSON grammar one-to-one; boxing the big variants
// would complicate every construction site to save bytes on values that
// live only for the duration of one frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job: the server streams one [`Reply::Cell`] per completed
    /// cell and terminates the stream with [`Reply::Done`].
    Submit {
        /// The job to run.
        job: JobSpec,
    },
    /// Ask for the server's lifetime counters ([`Reply::Status`]).
    Status,
    /// Ask the server to stop accepting connections and exit its accept
    /// loop ([`Reply::ShuttingDown`] is sent before the socket closes).
    Shutdown,
}

/// The versioned envelope around a [`Request`] line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub v: u32,
    /// The request itself.
    pub request: Request,
}

impl RequestFrame {
    /// Wraps a request in a current-version frame.
    pub fn new(request: Request) -> Self {
        RequestFrame {
            v: PROTOCOL_VERSION,
            request,
        }
    }
}

/// Lifetime counters of a running server, as returned by [`Reply::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStatus {
    /// Jobs accepted since boot.
    pub jobs_submitted: u64,
    /// Cells actually executed (cache misses) since boot.
    pub cells_executed: u64,
    /// Cells served from the content-addressed cache since boot.
    pub cache_hits: u64,
    /// Completed cells currently held in the cache (journal replays
    /// included).
    pub cache_entries: usize,
    /// Seconds since the server booted. `None` from pre-heartbeat servers.
    pub uptime_seconds: Option<u64>,
    /// Jobs currently executing (submitted, not yet `Done`). `None` from
    /// pre-heartbeat servers.
    pub in_flight_jobs: Option<u64>,
    /// Total compute slots the server admits concurrently. `None` from
    /// pre-heartbeat servers.
    pub slots_total: Option<u64>,
    /// Compute slots currently free. `None` from pre-heartbeat servers.
    pub slots_free: Option<u64>,
    /// Lines appended to the journal since boot. `None` from
    /// pre-heartbeat servers or when journaling is disabled.
    pub journal_lines: Option<u64>,
    /// `false` once a journal append has failed — results may no longer be
    /// durable. `None` from pre-heartbeat servers.
    pub journal_healthy: Option<bool>,
}

/// One server reply, inside a [`ReplyFrame`].
// Same rationale as [`Request`]: frame-lifetime values, grammar-shaped.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// First line on every accepted connection: server identity and
    /// protocol version, so clients can fail fast on a mismatch.
    Hello {
        /// Server software name (`"gis-serve"`).
        server: String,
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// A submitted job passed validation and is about to run.
    Accepted {
        /// Content-addressed job id (identical specs get identical ids).
        job_id: String,
        /// Total (problem, estimator) cells the job will stream.
        total_cells: usize,
    },
    /// One completed cell of a running job, streamed the moment it is
    /// durable in the journal.
    Cell {
        /// Job this cell belongs to.
        job_id: String,
        /// Problem (scenario) name.
        problem: String,
        /// Estimator name.
        estimator: String,
        /// Cells of this job completed so far, this one included.
        completed_cells: usize,
        /// Total cells of this job.
        total_cells: usize,
        /// `true` when the cell came from the content-addressed cache
        /// instead of executing.
        cached: bool,
        /// The cell's full method report (row, seed, diagnostics).
        report: MethodReport,
    },
    /// A job finished: every cell streamed, full report assembled.
    Done {
        /// Job id.
        job_id: String,
        /// Cells this job actually executed.
        cells_executed: usize,
        /// Cells this job took from the cache.
        cells_cached: usize,
        /// The assembled report — bit-identical to the same plan run
        /// through the batch `SweepRunner`.
        report: AnalysisReport,
        /// `Some(true)` when the job's deadline elapsed mid-run: the report
        /// is complete in shape but cells past the deadline are typed
        /// `deadline-exceeded` placeholders. `None`/absent (pre-deadline
        /// servers) or `Some(false)` = every cell genuinely ran.
        partial: Option<bool>,
    },
    /// Server counters, in response to [`Request::Status`].
    Status {
        /// The counters.
        status: ServerStatus,
    },
    /// A request failed; the connection stays usable unless the error was
    /// a framing error (torn/oversized), after which the server closes it.
    Error {
        /// Stable machine-readable error code (see [`ProtocolError::code`]
        /// and the job-level codes in `server.rs`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges [`Request::Shutdown`]; the server exits its accept
    /// loop right after this line is flushed.
    ShuttingDown,
}

/// The versioned envelope around a [`Reply`] line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyFrame {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub v: u32,
    /// The reply itself.
    pub reply: Reply,
}

impl ReplyFrame {
    /// Wraps a reply in a current-version frame.
    pub fn new(reply: Reply) -> Self {
        ReplyFrame {
            v: PROTOCOL_VERSION,
            reply,
        }
    }
}

/// Typed failure of the framing/parsing layer. Every malformed or hostile
/// input maps here; the protocol code never panics on wire data.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line was not valid UTF-8 JSON of the expected shape.
    MalformedJson {
        /// Parser detail.
        detail: String,
    },
    /// The frame's `v` field does not match [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version the peer sent.
        got: u32,
    },
    /// The stream ended before the line's `\n` terminator — the peer died
    /// mid-write.
    TornFrame,
    /// The line exceeded the configured size limit.
    Oversized {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The underlying transport failed (including read timeouts, which
    /// keep a silent peer from hanging the connection forever).
    Io {
        /// IO detail.
        detail: String,
    },
}

impl ProtocolError {
    /// Stable machine-readable code, used in [`Reply::Error`].
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::MalformedJson { .. } => "malformed-json",
            ProtocolError::UnsupportedVersion { .. } => "unsupported-version",
            ProtocolError::TornFrame => "torn-frame",
            ProtocolError::Oversized { .. } => "oversized-request",
            ProtocolError::Io { .. } => "io",
        }
    }

    /// Whether the connection is still usable after this error. Framing
    /// errors (torn line, oversized line, transport failure) leave the
    /// stream position undefined, so the connection must close; content
    /// errors (bad JSON, wrong version) are line-delimited and recoverable.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            ProtocolError::TornFrame | ProtocolError::Oversized { .. } | ProtocolError::Io { .. }
        )
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::MalformedJson { detail } => write!(f, "malformed JSON frame: {detail}"),
            ProtocolError::UnsupportedVersion { got } => write!(
                f,
                "unsupported protocol version {got} (this side speaks {PROTOCOL_VERSION})"
            ),
            ProtocolError::TornFrame => write!(f, "torn frame: stream ended mid-line"),
            ProtocolError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            ProtocolError::Io { detail } => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Reads one `\n`-terminated line, buffering at most `max_bytes + 1` bytes.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames), [`ProtocolError::TornFrame`] when the stream ends mid-line,
/// [`ProtocolError::Oversized`] when the line exceeds `max_bytes`, and
/// [`ProtocolError::Io`] on transport failures (read timeouts included).
/// The trailing terminator is stripped from the returned line.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> Result<Option<String>, ProtocolError> {
    let mut buf = Vec::new();
    let mut bounded = reader.take(max_bytes as u64 + 1);
    match bounded.read_until(b'\n', &mut buf) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => {
            return Err(ProtocolError::Io {
                detail: e.to_string(),
            })
        }
    }
    if buf.len() > max_bytes {
        return Err(ProtocolError::Oversized { limit: max_bytes });
    }
    match buf.pop() {
        Some(b'\n') => {}
        // read_until returned without a terminator: end-of-stream mid-line.
        _ => return Err(ProtocolError::TornFrame),
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ProtocolError::MalformedJson {
            detail: "frame is not valid UTF-8".to_string(),
        })
}

/// Parses one request line into a [`Request`], enforcing the protocol
/// version.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let frame: RequestFrame =
        serde_json::from_str(line).map_err(|e| ProtocolError::MalformedJson {
            detail: e.to_string(),
        })?;
    if frame.v != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion { got: frame.v });
    }
    Ok(frame.request)
}

/// Parses one reply line into a [`Reply`], enforcing the protocol version.
pub fn parse_reply(line: &str) -> Result<Reply, ProtocolError> {
    let frame: ReplyFrame =
        serde_json::from_str(line).map_err(|e| ProtocolError::MalformedJson {
            detail: e.to_string(),
        })?;
    if frame.v != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion { got: frame.v });
    }
    Ok(frame.reply)
}

/// Serializes `request` as one frame line (terminator included).
pub fn encode_request(request: &Request) -> String {
    // Serializing an in-memory frame to a string cannot fail.
    let mut line = serde_json::to_string(&RequestFrame::new(request.clone()))
        .unwrap_or_else(|e| unreachable_serialize(&e));
    line.push('\n');
    line
}

/// Serializes `reply` as one frame line (terminator included).
pub fn encode_reply(reply: &Reply) -> String {
    // Serializing an in-memory frame to a string cannot fail.
    let mut line = serde_json::to_string(&ReplyFrame::new(reply.clone()))
        .unwrap_or_else(|e| unreachable_serialize(&e));
    line.push('\n');
    line
}

/// Single audited abort for the cannot-happen serialization failure of an
/// in-memory frame.
fn unreachable_serialize(error: &dyn std::fmt::Display) -> ! {
    panic!("in-memory frame failed to serialize: {error}") // gis-analyze: allow(panic-site, serializing an in-memory frame to a string cannot fail)
}

/// Writes and flushes one reply frame. Errors mean the peer is gone; the
/// caller drops the connection.
pub fn write_reply<W: Write>(writer: &mut W, reply: &Reply) -> std::io::Result<()> {
    writer.write_all(encode_reply(reply).as_bytes())?;
    writer.flush()
}

/// Writes and flushes one request frame.
pub fn write_request<W: Write>(writer: &mut W, request: &Request) -> std::io::Result<()> {
    writer.write_all(encode_request(request).as_bytes())?;
    writer.flush()
}
