//! Content-addressed result cache: one completed [`MethodReport`] per
//! canonical cell key, with single-flight execution.
//!
//! The cache is the dedup point of the daemon: when two clients submit
//! jobs sharing a cell (same problem identity, estimator spec, master
//! seed, policy and derived seed — see `job::cell_key`), the first claim
//! wins the right to execute and every other claimant blocks on the
//! condvar until the result lands. The evaluation counter is therefore
//! charged exactly once per distinct cell, which the cache tests assert.
//!
//! Quarantined failures are never cached: when a cell completes as a typed
//! failure (see `gis_core::fault`), the server journals the placeholder
//! for audit but drops its [`ComputeGuard`] unfulfilled, abandoning the
//! key — a later claim (same job retried, another client, or a restart)
//! gives the cell a fresh chance instead of serving the failure forever.

use gis_core::MethodReport;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// What a [`ResultCache::claim`] call resolved to.
pub enum Claim<'a> {
    /// The caller owns the cell: execute it and call
    /// [`ComputeGuard::fulfill`] with the result. Dropping the guard
    /// without fulfilling — an early return, or a panic anywhere between
    /// the claim and the fulfill (a journal-append failure, for instance)
    /// — abandons the key, so it becomes claimable again and every blocked
    /// claimant re-races instead of hanging forever.
    Compute(ComputeGuard<'a>),
    /// The cell is already done (fresh or replayed); here is the result.
    Ready(Box<MethodReport>),
}

/// RAII ownership of an in-flight cell. Exactly one of two things happens
/// to the key: [`fulfill`](ComputeGuard::fulfill) stores the result and
/// charges the execution counter, or the guard drops unfulfilled and the
/// key is abandoned (removed, not counted as executed). Either way every
/// claimant blocked on the key wakes.
pub struct ComputeGuard<'a> {
    cache: &'a ResultCache,
    key: String,
    fulfilled: bool,
}

impl ComputeGuard<'_> {
    /// The claimed cell key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Completes the claimed cell: stores the result, charges the
    /// execution counter, and wakes every blocked claimant of the key.
    pub fn fulfill(mut self, report: MethodReport) {
        self.fulfilled = true;
        self.cache.fulfill(&self.key, report);
    }
}

impl Drop for ComputeGuard<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.cache.abandon(&self.key);
        }
    }
}

// `Done` dwarfs `InFlight`, but each map slot is overwritten in place and
// short-lived relative to the cell it caches — boxing would only add a hop.
#[allow(clippy::large_enum_variant)]
enum CellState {
    /// A claimant is computing the cell right now.
    InFlight,
    /// The cell is done.
    Done(MethodReport),
}

struct Inner {
    cells: BTreeMap<String, CellState>,
    /// Cells computed through the cache since boot (cache misses).
    executed: u64,
    /// Claims served from a `Done` entry since boot.
    hits: u64,
}

/// Lifetime counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells computed (cache misses that ran to completion).
    pub executed: u64,
    /// Claims served from the cache.
    pub hits: u64,
    /// Completed cells currently held (replayed entries included).
    pub entries: usize,
}

/// Thread-safe single-flight result cache keyed by canonical cell JSON.
pub struct ResultCache {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                cells: BTreeMap::new(),
                executed: 0,
                hits: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache lock only follows a panic inside another
        // claimant's critical section (plain map bookkeeping); recover the
        // guard rather than cascade the poison into every connection.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Claims `key`: returns [`Claim::Ready`] when the cell is done,
    /// [`Claim::Compute`] (with the RAII guard) when the caller must
    /// execute it, and blocks while another claimant is executing the same
    /// key.
    pub fn claim(&self, key: &str) -> Claim<'_> {
        let mut inner = self.lock();
        loop {
            match inner.cells.get(key) {
                None => {
                    inner.cells.insert(key.to_string(), CellState::InFlight);
                    return Claim::Compute(ComputeGuard {
                        cache: self,
                        key: key.to_string(),
                        fulfilled: false,
                    });
                }
                Some(CellState::Done(report)) => {
                    let report = report.clone();
                    inner.hits += 1;
                    return Claim::Ready(Box::new(report));
                }
                Some(CellState::InFlight) => {
                    inner = match self.ready.wait(inner) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }

    /// Completes a claimed cell: stores the result, charges the execution
    /// counter, and wakes every blocked claimant of the key. Private — the
    /// only path here is [`ComputeGuard::fulfill`], which guarantees a
    /// claimed key is always either fulfilled or abandoned.
    fn fulfill(&self, key: &str, report: MethodReport) {
        let mut inner = self.lock();
        inner.executed += 1;
        inner.cells.insert(key.to_string(), CellState::Done(report));
        drop(inner);
        self.ready.notify_all();
    }

    /// Releases a claimed cell without a result (the computation failed or
    /// panicked): the key becomes claimable again and every blocked
    /// claimant is woken to re-race for it. Private — invoked by
    /// [`ComputeGuard`]'s `Drop` so no code path can forget it.
    fn abandon(&self, key: &str) {
        let mut inner = self.lock();
        if matches!(inner.cells.get(key), Some(CellState::InFlight)) {
            inner.cells.remove(key);
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// Inserts a replayed result (journal boot replay): counts as neither
    /// an execution nor a hit, and never downgrades a `Done` entry.
    pub fn seed(&self, key: &str, report: MethodReport) {
        let mut inner = self.lock();
        match inner.cells.get(key) {
            Some(CellState::Done(_)) => {}
            _ => {
                inner.cells.insert(key.to_string(), CellState::Done(report));
            }
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        let entries = inner
            .cells
            .values()
            .filter(|state| matches!(state, CellState::Done(_)))
            .count();
        CacheStats {
            executed: inner.executed,
            hits: inner.hits,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_core::{
        BenchmarkProblem, ConvergencePolicy, MonteCarlo, MonteCarloConfig, YieldAnalysis,
    };
    use std::panic::AssertUnwindSafe;
    use std::time::Duration;

    fn sample_report() -> MethodReport {
        let problem = BenchmarkProblem::fast_suite().remove(0);
        let mut analysis = YieldAnalysis::new()
            .master_seed(7)
            .convergence_policy(ConvergencePolicy::with_budget(200))
            .problem("cell", problem.fork())
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())));
        analysis.prepare();
        analysis.run_cell(0, 0)
    }

    #[test]
    fn dropped_guard_abandons_and_key_is_reclaimable() {
        let cache = ResultCache::new();
        match cache.claim("k") {
            Claim::Compute(guard) => drop(guard),
            Claim::Ready(_) => panic!("fresh key cannot be ready"),
        }
        // Abandoned: claimable again, and nothing was charged as executed.
        assert_eq!(cache.stats().executed, 0);
        let guard = match cache.claim("k") {
            Claim::Compute(guard) => guard,
            Claim::Ready(_) => panic!("abandoned key must be re-claimable"),
        };
        let report = sample_report();
        guard.fulfill(report.clone());
        let stats = cache.stats();
        assert_eq!((stats.executed, stats.hits, stats.entries), (1, 0, 1));
        match cache.claim("k") {
            Claim::Ready(ready) => assert_eq!(*ready, report),
            Claim::Compute(_) => panic!("fulfilled key must be ready"),
        }
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn panicking_computer_unblocks_waiting_claimants() {
        // Regression: a panic between claim and fulfill (a journal-append
        // failure, for instance) used to leave the key `InFlight` forever,
        // hanging every other claimant of the cell. The guard's `Drop` now
        // abandons the key during unwind, so waiters re-race it.
        let cache = ResultCache::new();
        let report = sample_report();
        std::thread::scope(|s| {
            let guard = match cache.claim("cell") {
                Claim::Compute(guard) => guard,
                Claim::Ready(_) => panic!("fresh key cannot be ready"),
            };
            let waiter = s.spawn(|| match cache.claim("cell") {
                Claim::Compute(guard) => {
                    guard.fulfill(report.clone());
                    true
                }
                Claim::Ready(_) => false,
            });
            // Give the waiter time to block on the in-flight key, then
            // panic while owning the claim.
            std::thread::sleep(Duration::from_millis(50));
            let panicked = std::panic::catch_unwind(AssertUnwindSafe(move || {
                let _guard = guard;
                panic!("simulated journal-append failure mid-compute");
            }));
            assert!(panicked.is_err());
            assert!(
                waiter.join().expect("waiter thread completes"),
                "waiter must win the re-race, not observe a phantom result"
            );
        });
        // Exactly the successful computation was charged; the panicked
        // attempt left no trace beyond the re-race.
        let stats = cache.stats();
        assert_eq!((stats.executed, stats.hits, stats.entries), (1, 0, 1));
        match cache.claim("cell") {
            Claim::Ready(ready) => assert_eq!(*ready, report),
            Claim::Compute(_) => panic!("re-raced key must hold the waiter's result"),
        }
        assert_eq!(cache.stats().hits, 1);
    }
}
