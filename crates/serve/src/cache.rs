//! Content-addressed result cache: one completed [`MethodReport`] per
//! canonical cell key, with single-flight execution.
//!
//! The cache is the dedup point of the daemon: when two clients submit
//! jobs sharing a cell (same problem identity, estimator spec, master
//! seed, policy and derived seed — see `job::cell_key`), the first claim
//! wins the right to execute and every other claimant blocks on the
//! condvar until the result lands. The evaluation counter is therefore
//! charged exactly once per distinct cell, which the cache tests assert.

use gis_core::MethodReport;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// What a [`ResultCache::claim`] call resolved to.
pub enum Claim {
    /// The caller owns the cell: it must execute and then either
    /// [`ResultCache::fulfill`] or [`ResultCache::abandon`] the key —
    /// otherwise every other claimant of the key blocks forever.
    Compute,
    /// The cell is already done (fresh or replayed); here is the result.
    Ready(Box<MethodReport>),
}

// `Done` dwarfs `InFlight`, but each map slot is overwritten in place and
// short-lived relative to the cell it caches — boxing would only add a hop.
#[allow(clippy::large_enum_variant)]
enum CellState {
    /// A claimant is computing the cell right now.
    InFlight,
    /// The cell is done.
    Done(MethodReport),
}

struct Inner {
    cells: BTreeMap<String, CellState>,
    /// Cells computed through the cache since boot (cache misses).
    executed: u64,
    /// Claims served from a `Done` entry since boot.
    hits: u64,
}

/// Lifetime counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells computed (cache misses that ran to completion).
    pub executed: u64,
    /// Claims served from the cache.
    pub hits: u64,
    /// Completed cells currently held (replayed entries included).
    pub entries: usize,
}

/// Thread-safe single-flight result cache keyed by canonical cell JSON.
pub struct ResultCache {
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                cells: BTreeMap::new(),
                executed: 0,
                hits: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache lock only follows a panic inside another
        // claimant's critical section (plain map bookkeeping); recover the
        // guard rather than cascade the poison into every connection.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Claims `key`: returns [`Claim::Ready`] when the cell is done,
    /// [`Claim::Compute`] when the caller must execute it, and blocks
    /// while another claimant is executing the same key.
    pub fn claim(&self, key: &str) -> Claim {
        let mut inner = self.lock();
        loop {
            match inner.cells.get(key) {
                None => {
                    inner.cells.insert(key.to_string(), CellState::InFlight);
                    return Claim::Compute;
                }
                Some(CellState::Done(report)) => {
                    let report = report.clone();
                    inner.hits += 1;
                    return Claim::Ready(Box::new(report));
                }
                Some(CellState::InFlight) => {
                    inner = match self.ready.wait(inner) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }

    /// Completes a claimed cell: stores the result, charges the execution
    /// counter, and wakes every blocked claimant of the key.
    pub fn fulfill(&self, key: &str, report: MethodReport) {
        let mut inner = self.lock();
        inner.executed += 1;
        inner.cells.insert(key.to_string(), CellState::Done(report));
        drop(inner);
        self.ready.notify_all();
    }

    /// Releases a claimed cell without a result (the computation failed or
    /// panicked): the key becomes claimable again and every blocked
    /// claimant is woken to re-race for it.
    pub fn abandon(&self, key: &str) {
        let mut inner = self.lock();
        if matches!(inner.cells.get(key), Some(CellState::InFlight)) {
            inner.cells.remove(key);
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// Inserts a replayed result (journal boot replay): counts as neither
    /// an execution nor a hit, and never downgrades a `Done` entry.
    pub fn seed(&self, key: &str, report: MethodReport) {
        let mut inner = self.lock();
        match inner.cells.get(key) {
            Some(CellState::Done(_)) => {}
            _ => {
                inner.cells.insert(key.to_string(), CellState::Done(report));
            }
        }
        drop(inner);
        self.ready.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        let entries = inner
            .cells
            .values()
            .filter(|state| matches!(state, CellState::Done(_)))
            .count();
        CacheStats {
            executed: inner.executed,
            hits: inner.hits,
            entries,
        }
    }
}
