//! Yield-analysis as a service: a zero-dependency job server over the
//! sweep engine of `gis_core`.
//!
//! The paper's workload — rare-event SRAM yield extraction across
//! operating grids — is a many-client, long-running-job shape. This crate
//! turns the existing batch machinery ([`gis_core::SweepRunner`] matrix
//! scheduling, durable JSON-lines checkpointing, the deterministic
//! executor) into a long-running daemon:
//!
//! * **[`protocol`]** — the JSON-lines TCP wire format: versioned frames,
//!   bounded reads, typed errors for torn/oversized/garbage input.
//! * **[`job`]** — serializable job specifications ([`JobSpec`]: problem
//!   family × estimator configs × seed × policy) and the canonical
//!   content-addressed cell identity ([`job::cell_key`]).
//! * **[`cache`]** — the single-flight result cache: identical cells
//!   submitted by any number of clients execute exactly once.
//! * **[`server`]** — the daemon: thread-per-connection accept loop, a
//!   shared compute-slot budget across all clients, and a durable journal
//!   (the same [`gis_core::SweepLogEntry`] envelope format as the sweep
//!   checkpoint) replayed on boot, so a kill/restart never recomputes a
//!   finished cell.
//! * **[`client`]** — the typed client the thin CLI drivers
//!   (`bench_sweep --connect`, the table binaries) and the tests use,
//!   including the self-healing entry points ([`submit_with_recovery`],
//!   [`connect_with_retry`]): exponential backoff with deterministic
//!   jitter, idempotent resubmission over the content-addressed cache,
//!   and cell-progress dedup so an interrupted stream resumes without
//!   repeating rows.
//!
//! # Determinism contract
//!
//! A job's rows are bit-identical whether the plan runs batch
//! (`SweepRunner::run`), is served fresh, is served from cache, or is
//! resumed after a kill — the integration tests assert all four paths
//! against each other. The daemon always evaluates transient problems on
//! the default sparse kernel; the opt-in `GIS_FAST_LANE` fast-math lane
//! is a client-local concern that does not travel over the wire.

// The workspace has zero unsafe code; lock that in per crate.
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used /
// expect_used are warn in [workspace.lints.clippy]); tests are free to
// unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod job;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, Claim, ResultCache};
pub use client::{
    connect_with_retry, submit_with_recovery, CellProgress, Client, ClientError, JobReceipt,
    RetryPolicy,
};
pub use job::{cell_key, plan_job, EstimatorSpec, JobError, JobPlan, JobSpec, ProblemSpec};
pub use protocol::{
    ProtocolError, Reply, ReplyFrame, Request, RequestFrame, ServerStatus, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
