//! The daemon: a std::net TCP accept loop multiplexing concurrent clients
//! onto one shared execution configuration, with a content-addressed
//! result cache and a durable JSON-lines journal.
//!
//! # Job lifecycle
//!
//! 1. A connection opens; the server sends [`Reply::Hello`].
//! 2. The client sends [`Request::Submit`]. The spec is validated and
//!    journaled (`kind = "job"` [`SweepLogEntry`] line), then answered
//!    with [`Reply::Accepted`].
//! 3. Cells run in registration order. Each cell is claimed in the
//!    [`ResultCache`]: a hit streams immediately; a miss executes under a
//!    compute slot (bounding concurrent cell computations across *all*
//!    connections), is appended to the journal (`kind = "cell"` line with
//!    the cache `key`, flushed) and only then streamed as
//!    [`Reply::Cell`] — a row a client has seen is always durable.
//! 4. [`Reply::Done`] carries the assembled [`AnalysisReport`],
//!    bit-identical to the same plan run through the batch `SweepRunner`.
//!
//! # Restart semantics
//!
//! On boot the server replays its journal: every well-formed cell line
//! seeds the cache under its recorded key; torn tails (a kill mid-append)
//! and alien lines are skipped, mirroring the sweep checkpoint loader.
//! A client that resubmits a job after a server kill therefore streams
//! the already-completed cells from cache and only pays for the rest.

use crate::cache::{Claim, ResultCache};
use crate::job::{plan_job, JobPlan, JobSpec};
use crate::protocol::{
    encode_reply, parse_request, read_frame, write_reply, Reply, Request, ServerStatus,
    PROTOCOL_VERSION,
};
use gis_core::fault::{self, CellFailure};
use gis_core::sweep::{SweepCellRecord, SweepLogEntry, SWEEP_LOG_KIND_CELL};
use gis_core::{AnalysisReport, ExecutionConfig, FaultPlan, MethodReport, ProblemReport};
use serde::Serialize;
use std::io::{BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counting semaphore bounding concurrent cell computations across every
/// connection — the knob that multiplexes all clients onto one shared
/// execution budget instead of letting each connection fork unbounded
/// parallelism.
struct ComputeSlots {
    free: Mutex<usize>,
    available: Condvar,
}

impl ComputeSlots {
    fn new(permits: usize) -> Self {
        ComputeSlots {
            free: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) -> SlotPermit<'_> {
        let mut free = match self.free.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        while *free == 0 {
            free = match self.available.wait(free) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        *free -= 1;
        SlotPermit { slots: self }
    }

    /// Slots currently free (heartbeat snapshot; racy by nature).
    fn free_now(&self) -> usize {
        match self.free.lock() {
            Ok(guard) => *guard,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    fn release(&self) {
        let mut free = match self.free.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *free += 1;
        drop(free);
        self.available.notify_one();
    }
}

/// RAII permit of [`ComputeSlots`]; releases on drop (panic included).
struct SlotPermit<'a> {
    slots: &'a ComputeSlots,
}

impl Drop for SlotPermit<'_> {
    fn drop(&mut self) {
        self.slots.release();
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 = ephemeral).
    pub bind_addr: String,
    /// Journal file (JSON-lines [`SweepLogEntry`] envelopes). `None`
    /// disables durability: the cache is memory-only and a restart starts
    /// cold.
    pub journal: Option<PathBuf>,
    /// Execution configuration applied to every job's estimators (the
    /// shared parallelism budget).
    pub execution: ExecutionConfig,
    /// Concurrent cell computations across all connections.
    pub compute_slots: usize,
    /// Per-request size cap in bytes.
    pub max_request_bytes: usize,
    /// Read timeout per request line — a silent peer cannot hang a
    /// connection thread forever.
    pub read_timeout: Duration,
    /// How many times a failing cell is retried (same derived seed) before
    /// it is quarantined as a typed failure.
    pub cell_attempts: u32,
    /// Deterministic fault plan for this server (tests and chaos drills).
    /// `None` falls back to the process-wide `GIS_FAULTS` plan; both unset
    /// means no injection.
    pub faults: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let execution = ExecutionConfig::from_env();
        let compute_slots = execution.resolved_threads().max(1);
        ServerConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            journal: None,
            execution,
            compute_slots,
            max_request_bytes: crate::protocol::DEFAULT_MAX_REQUEST_BYTES,
            read_timeout: Duration::from_secs(120),
            cell_attempts: fault::DEFAULT_CELL_ATTEMPTS,
            faults: None,
        }
    }
}

struct Shared {
    cache: ResultCache,
    journal: Option<Mutex<std::fs::File>>,
    execution: ExecutionConfig,
    slots: ComputeSlots,
    slots_total: usize,
    jobs_submitted: AtomicU64,
    shutdown: AtomicBool,
    max_request_bytes: usize,
    read_timeout: Duration,
    cell_attempts: u32,
    faults_override: Option<FaultPlan>,
    started: Instant,
    in_flight: AtomicU64,
    journal_lines: AtomicU64,
    journal_healthy: AtomicBool,
    /// Remaining injected socket drops (from the fault plan's
    /// `drop-frame:<n>:<times>` budget) — shared across connections so a
    /// reconnecting client eventually gets through.
    drop_budget: AtomicU64,
}

impl Shared {
    /// The effective fault plan: per-server override, else process-wide.
    fn faults(&self) -> Option<&FaultPlan> {
        match &self.faults_override {
            Some(plan) => Some(plan),
            None => fault::global(),
        }
    }
}

/// RAII in-flight-jobs counter (decrements on drop, panic included).
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        InFlightGuard(counter)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound, journal-replayed server ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Replays a journal's cell lines into the cache. Returns how many entries
/// were seeded. Torn, alien or record-less lines are skipped — the replay
/// tolerates exactly what the sweep checkpoint loader tolerates.
fn replay_journal(path: &std::path::Path, cache: &ResultCache) -> usize {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut seeded = 0;
    for line in contents.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(entry) = serde_json::from_str::<SweepLogEntry>(line) else {
            continue;
        };
        // A sealed line whose checksum fails is damaged (torn write or bit
        // rot that still parses) and must not seed the cache; unsealed
        // legacy lines replay on parse validity alone.
        if !entry.crc_valid() {
            continue;
        }
        if entry.v != gis_core::sweep::SWEEP_LOG_VERSION || entry.kind != SWEEP_LOG_KIND_CELL {
            continue;
        }
        let (Some(key), Some(record)) = (entry.key, entry.record) else {
            continue;
        };
        // Journaled failures document the fault for audit; they never seed
        // the cache — a restart gives the cell a fresh chance.
        if record.report.is_failed() {
            continue;
        }
        cache.seed(&key, record.report);
        seeded += 1;
    }
    seeded
}

impl Server {
    /// Binds the listener, replays the journal (if any) into the cache and
    /// opens the journal appender. IO failures here are returned, not
    /// panicked: the caller (usually `main`) decides how to abort.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let cache = ResultCache::new();
        let journal = match &config.journal {
            Some(path) => {
                let replayed = replay_journal(path, &cache);
                if replayed > 0 {
                    eprintln!(
                        "gis-serve: replayed {replayed} completed cells from {}",
                        path.display()
                    );
                }
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent)?;
                }
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                Some(Mutex::new(file))
            }
            None => None,
        };
        let slots_total = config.compute_slots.max(1);
        let effective_faults: Option<&FaultPlan> = match &config.faults {
            Some(plan) => Some(plan),
            None => fault::global(),
        };
        let drop_budget = effective_faults
            .and_then(|plan| plan.drop_frame.as_ref())
            .map_or(0, |drop| drop.times);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache,
                journal,
                execution: config.execution,
                slots: ComputeSlots::new(slots_total),
                slots_total,
                jobs_submitted: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                max_request_bytes: config.max_request_bytes,
                read_timeout: config.read_timeout,
                cell_attempts: config.cell_attempts.max(1),
                faults_override: config.faults,
                started: Instant::now(),
                in_flight: AtomicU64::new(0),
                journal_lines: AtomicU64::new(0),
                journal_healthy: AtomicBool::new(true),
                drop_budget: AtomicU64::new(drop_budget),
            }),
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until a client requests shutdown. Each
    /// connection gets its own thread; accept errors are logged and the
    /// loop continues (a bad handshake must not kill the daemon).
    pub fn run(self) {
        let local_addr = self.listener.local_addr().ok();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    let addr = local_addr;
                    std::thread::spawn(move || {
                        handle_connection(stream, &shared, addr);
                    });
                }
                Err(e) => {
                    eprintln!("gis-serve: accept failed: {e}");
                }
            }
        }
    }
}

/// Appends one envelope line (sealed with its CRC) to the journal and
/// flushes it. A journal write failure marks the journal unhealthy (the
/// `Status` heartbeat surfaces it) and aborts this connection's job (panic
/// unwinds the connection thread only): a lost journal line would silently
/// fake restart safety, exactly the failure mode the sweep checkpoint
/// refuses. Under an injected `torn-journal:<n>` fault the nth append
/// writes only half its line, reproducing a kill mid-append.
#[allow(clippy::expect_used)] // deliberate fail-fast, invariants stated in the expect messages
fn journal_append(shared: &Shared, entry: SweepLogEntry) {
    let Some(journal) = &shared.journal else {
        return;
    };
    let line = serde_json::to_string(&entry.sealed()).expect("in-memory journal entry serializes"); // gis-analyze: allow(panic-site, serializing an in-memory envelope to a string cannot fail)
    let mut file = match journal.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let n = shared.journal_lines.fetch_add(1, Ordering::SeqCst) + 1;
    let written = if shared.faults().is_some_and(|f| f.tears_journal_line(n)) {
        write!(file, "{}", &line[..line.len() / 2]).and_then(|_| file.flush())
    } else {
        writeln!(file, "{line}").and_then(|_| file.flush())
    };
    if let Err(e) = written {
        shared.journal_healthy.store(false, Ordering::SeqCst);
        panic!("journal append failed: {e}"); // gis-analyze: allow(panic-site, deliberate fail-fast: a lost journal line would silently fake restart safety)
    }
}

/// The reply side of one connection: wraps the stream so every outgoing
/// frame passes one choke point, where the `drop-frame:<n>:<times>` fault
/// injects a half-written frame followed by a hard close — the shape a
/// network partition or server kill leaves a streaming client in.
struct ReplyChannel<'a> {
    writer: &'a mut TcpStream,
    shared: &'a Shared,
    /// Frames attempted on this connection ([`Reply::Hello`] included).
    frames: u64,
}

impl ReplyChannel<'_> {
    fn send(&mut self, reply: &Reply) -> std::io::Result<()> {
        self.frames += 1;
        if let Some(drop) = self.shared.faults().and_then(|f| f.drop_frame.as_ref()) {
            let armed = self.frames == drop.nth
                && self
                    .shared
                    .drop_budget
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |budget| {
                        budget.checked_sub(1)
                    })
                    .is_ok();
            if armed {
                // Half a frame, then a hard close: the client sees a torn
                // frame (or an IO error) mid-stream and must reconnect.
                let line = encode_reply(reply);
                let _ = self.writer.write_all(&line.as_bytes()[..line.len() / 2]);
                let _ = self.writer.flush();
                let _ = self.writer.shutdown(std::net::Shutdown::Both);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "injected socket drop",
                ));
            }
        }
        write_reply(self.writer, reply)
    }
}

/// Runs one submitted job: validate, journal, stream cells, assemble.
/// Returns `Ok(())` while the connection is still writable; an `Err` means
/// the peer is gone and the connection loop should end. Cache state stays
/// consistent even when the client disconnects mid-stream: a computed
/// cell is journaled and fulfilled before the stream write is attempted.
///
/// A panicking or non-converging cell is quarantined as a typed failure
/// (retried up to the configured attempts first): its placeholder report
/// is journaled for audit but never cached, its `Reply::Cell` streams with
/// `cached = false`, and the job *continues* — one poisoned cell no longer
/// aborts the other cells of the job. When the job carries a deadline and
/// it elapses, cells not yet started become `deadline-exceeded`
/// placeholders (not journaled — they document give-up, not computation)
/// and the final [`Reply::Done`] is marked partial.
fn run_job(channel: &mut ReplyChannel<'_>, shared: &Shared, job: &JobSpec) -> std::io::Result<()> {
    shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
    let _in_flight = InFlightGuard::enter(&shared.in_flight);
    let plan = match plan_job(job, shared.execution) {
        Ok(plan) => plan,
        Err(e) => {
            return channel.send(&Reply::Error {
                code: "bad-job".to_string(),
                message: e.to_string(),
            });
        }
    };
    journal_append(
        shared,
        SweepLogEntry::job(job.to_value()).with_key(plan.job_id.clone()),
    );
    channel.send(&Reply::Accepted {
        job_id: plan.job_id.clone(),
        total_cells: plan.cells.len(),
    })?;

    let deadline = job
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let total_cells = plan.cells.len();
    let per_problem = plan.estimator_names.len();
    let mut cells_executed = 0usize;
    let mut cells_cached = 0usize;
    let mut deadline_hit = false;
    let mut completed: Vec<MethodReport> = Vec::with_capacity(total_cells);
    for (index, cell) in plan.cells.iter().enumerate() {
        let derived = plan.analysis.derived_seed(&cell.problem, &cell.estimator);
        // Deadline enforcement happens between cells: a started cell runs
        // to completion (its result is journaled and cached — the work is
        // not wasted), but no new cell starts past the deadline.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            deadline_hit = true;
            completed.push(fault::failed_report(
                &cell.estimator,
                derived,
                CellFailure {
                    reason: fault::CellFailureReason::DeadlineExceeded {
                        detail: format!(
                            "job deadline of {} ms elapsed before this cell started",
                            job.deadline_ms.unwrap_or(0)
                        ),
                    },
                    attempts: 0,
                },
            ));
            continue;
        }
        // Continuation mode: the donor cell (same estimator, donor problem)
        // always precedes this cell in registration order, so its report is
        // already in `completed` — whether computed, cached or replayed —
        // and yields the same hint deterministically in every case. A
        // quarantined donor yields no hint, so the dependent degrades to a
        // blind run (recorded as provenance in the journal).
        let donor_report = cell.warm_from.as_ref().and_then(|donor| {
            plan.problem_names
                .iter()
                .position(|p| p == donor)
                .and_then(|dpi| completed.get(dpi * per_problem + cell.estimator_index))
        });
        let warm_hint = donor_report.and_then(|r| r.outcome.warm_hint());
        let donor_failed = donor_report.and_then(|r| r.failed.as_ref().map(|_| true));
        let (report, cached) = match shared.cache.claim(&cell.key) {
            Claim::Ready(report) => (*report, true),
            Claim::Compute(guard) => {
                let outcome = {
                    let _permit = shared.slots.acquire();
                    fault::run_contained(
                        &cell.problem,
                        &cell.estimator,
                        shared.cell_attempts,
                        shared.faults(),
                        || {
                            plan.analysis.run_cell_warm(
                                cell.problem_index,
                                cell.estimator_index,
                                warm_hint.as_ref(),
                            )
                        },
                    )
                };
                let failed = outcome.is_failed();
                let report = outcome.into_report(&cell.estimator, derived);
                // Journal before fulfill (durability before visibility).
                // If the append panics, `guard` drops unfulfilled and
                // abandons the key, so blocked claimants re-race instead
                // of hanging on a cell nobody is computing.
                journal_append(
                    shared,
                    SweepLogEntry::cell(SweepCellRecord {
                        master_seed: job.master_seed,
                        policy: job.policy,
                        problem: cell.problem.clone(),
                        report: report.clone(),
                        warm_from: cell.warm_from.clone(),
                        warm_hint: warm_hint.clone(),
                        donor_failed,
                    })
                    .with_key(cell.key.clone()),
                );
                if failed {
                    // Quarantined: journaled for audit, never cached —
                    // dropping the guard abandons the key so a later claim
                    // (or a restart) gives the cell a fresh chance.
                    drop(guard);
                } else {
                    guard.fulfill(report.clone());
                }
                (report, false)
            }
        };
        if cached {
            cells_cached += 1;
        } else {
            cells_executed += 1;
        }
        channel.send(&Reply::Cell {
            job_id: plan.job_id.clone(),
            problem: cell.problem.clone(),
            estimator: cell.estimator.clone(),
            completed_cells: index + 1,
            total_cells,
            cached,
            report: report.clone(),
        })?;
        completed.push(report);
    }

    let report = assemble(&plan, job.master_seed, completed);
    channel.send(&Reply::Done {
        job_id: plan.job_id.clone(),
        cells_executed,
        cells_cached,
        report,
        partial: deadline_hit.then_some(true),
    })
}

/// Assembles the full report from the cells in registration order — the
/// same shape `YieldAnalysis::run` produces, so reports compare equal to
/// the batch path.
fn assemble(plan: &JobPlan, master_seed: u64, cells: Vec<MethodReport>) -> AnalysisReport {
    let per_problem = plan.estimator_names.len();
    let mut problems = Vec::with_capacity(plan.problem_names.len());
    let mut cells = cells.into_iter();
    for problem in &plan.problem_names {
        problems.push(ProblemReport {
            problem: problem.clone(),
            methods: cells.by_ref().take(per_problem).collect(),
        });
    }
    AnalysisReport {
        master_seed,
        problems,
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, local_addr: Option<std::net::SocketAddr>) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut channel = ReplyChannel {
        writer: &mut writer,
        shared,
        frames: 0,
    };
    if channel
        .send(&Reply::Hello {
            server: "gis-serve".to_string(),
            protocol: PROTOCOL_VERSION,
        })
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, shared.max_request_bytes) {
            Ok(None) => return,
            Ok(Some(line)) => line,
            Err(e) => {
                let _ = channel.send(&Reply::Error {
                    code: e.code().to_string(),
                    message: e.to_string(),
                });
                if e.is_fatal() {
                    return;
                }
                continue;
            }
        };
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(e) => {
                // Content errors (bad JSON, wrong version) are
                // line-delimited: report and keep the connection.
                if channel
                    .send(&Reply::Error {
                        code: e.code().to_string(),
                        message: e.to_string(),
                    })
                    .is_err()
                {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Submit { job } => {
                if run_job(&mut channel, shared, &job).is_err() {
                    return;
                }
            }
            Request::Status => {
                let stats = shared.cache.stats();
                let status = ServerStatus {
                    jobs_submitted: shared.jobs_submitted.load(Ordering::SeqCst),
                    cells_executed: stats.executed,
                    cache_hits: stats.hits,
                    cache_entries: stats.entries,
                    uptime_seconds: Some(shared.started.elapsed().as_secs()),
                    in_flight_jobs: Some(shared.in_flight.load(Ordering::SeqCst)),
                    slots_total: Some(shared.slots_total as u64),
                    slots_free: Some(shared.slots.free_now() as u64),
                    journal_lines: Some(shared.journal_lines.load(Ordering::SeqCst)),
                    journal_healthy: Some(shared.journal_healthy.load(Ordering::SeqCst)),
                };
                if channel.send(&Reply::Status { status }).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = channel.send(&Reply::ShuttingDown);
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                if let Some(addr) = local_addr {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
                }
                return;
            }
        }
    }
}
