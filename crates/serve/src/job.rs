//! Serializable job model: which problems to solve, with which estimators,
//! under which seed and policy — plus the canonical cell identity the
//! content-addressed result cache and the journal are keyed by.
//!
//! A [`JobSpec`] travels over the wire, so it carries *specifications*
//! (serializable configs), not live objects: [`ProblemSpec`] names a family
//! of failure problems the server can rebuild deterministically, and
//! [`EstimatorSpec`] wraps the five estimator config structs of `gis_core`
//! in full fidelity (a custom-tuned `GisConfig` survives the round trip
//! bit for bit). The cache key of a cell ([`cell_key`]) canonically
//! serializes everything the sweep checkpoint already validates — problem
//! identity, estimator spec, master seed, convergence policy and the
//! derived per-cell seed — so two jobs share a cell's result exactly when
//! the batch engine would have produced identical rows for it.

use gis_core::{
    default_sram_variation_space, BenchmarkProblem, ConvergencePolicy, Estimator, ExecutionConfig,
    FailureProblem, GisConfig, GradientImportanceSampling, MinimumNormIs, MnisConfig, MonteCarlo,
    MonteCarloConfig, ScaledSigmaSampling, Scenario, Spec, SphericalSampling,
    SphericalSamplingConfig, SramMetric, SramSurrogateModel, SramTransientModel, SssConfig,
    SweepPlan, YieldAnalysis,
};
use gis_sram::{SramCellConfig, SramSurrogate, SramTestbench, TestbenchTiming};
use gis_variation::PelgromModel;
use serde::{Deserialize, Serialize};

/// FNV-1a hash, used to derive short content-addressed job ids from the
/// canonical job JSON. (Cell cache keys stay full canonical JSON — they
/// must be validatable on journal replay, not merely unique.)
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A family of failure problems the server can rebuild deterministically
/// from the specification alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// A named benchmark suite of `gis_core::problems` (analytically
    /// tractable problems with known ground truth): `"fast"`
    /// ([`BenchmarkProblem::fast_suite`]) or `"standard"`
    /// ([`BenchmarkProblem::standard_suite`]).
    Suite {
        /// Suite name: `"fast"` or `"standard"`.
        suite: String,
    },
    /// The full scenario grid of a [`SweepPlan`] — the daemon-served form
    /// of `bench_sweep`. One problem per scenario, in grid order.
    Plan {
        /// The sweep plan (axes, spec factor, capacity targets).
        plan: SweepPlan,
    },
    /// A single problem on the closed-form SRAM surrogate.
    SurrogateSram {
        /// Dynamic characteristic under test.
        metric: SramMetric,
        /// Spec limit as a multiple of the nominal metric (upper limit).
        spec_factor: f64,
        /// Extra padded variation parameters (peripheral devices), as in
        /// the dimensionality-scaling experiments. 0 = bare 6T cell.
        padded_dimensions: usize,
    },
    /// A single problem on the transient 6T testbench. The daemon always
    /// integrates with the default sparse kernel; the `GIS_FAST_LANE`
    /// fast-math lane is a client-local concern and deliberately does not
    /// travel over the wire.
    TransientSram {
        /// Dynamic characteristic under test.
        metric: SramMetric,
        /// Spec limit as a multiple of the nominal metric (upper limit).
        spec_factor: f64,
        /// Testbench timing override (`None` = the typical 45 nm timing).
        timing: Option<TestbenchTiming>,
    },
}

/// One rebuilt problem of a [`ProblemSpec`]: its registration name, its
/// canonical identity (the part of the spec that pins *this* problem,
/// independent of what else the spec expands to) and the live problem.
pub struct BuiltProblem {
    /// Registration (and checkpoint/report) name.
    pub name: String,
    /// Canonical identity serialized into the cell cache key.
    pub identity: serde::Value,
    /// The rebuilt failure problem.
    pub problem: FailureProblem,
}

impl ProblemSpec {
    /// Rebuilds the problem family, in deterministic registration order.
    ///
    /// All validation is typed: an unknown suite name, an invalid timing
    /// override or an operating point outside the model's domain returns a
    /// [`JobError`] instead of panicking the connection thread.
    pub fn build(&self) -> Result<Vec<BuiltProblem>, JobError> {
        match self {
            ProblemSpec::Suite { suite } => {
                let problems = match suite.as_str() {
                    "fast" => BenchmarkProblem::fast_suite(),
                    "standard" => BenchmarkProblem::standard_suite(),
                    other => {
                        return Err(JobError::UnknownSuite {
                            suite: other.to_string(),
                        })
                    }
                };
                Ok(problems
                    .into_iter()
                    .map(|p| {
                        let identity = serde::Value::Object(vec![
                            ("kind".to_string(), "suite".to_string().to_value()),
                            ("suite".to_string(), suite.to_value()),
                            ("problem".to_string(), p.name().to_value()),
                        ]);
                        BuiltProblem {
                            name: p.name().to_string(),
                            identity,
                            problem: p.fork(),
                        }
                    })
                    .collect())
            }
            ProblemSpec::Plan { plan } => {
                // SweepPlan::scenarios panics on empty axes or aliased
                // names; pre-validate the axes and let guarded building
                // catch the rest.
                if plan.corners.is_empty()
                    || plan.supply_voltages.is_empty()
                    || plan.temperatures_celsius.is_empty()
                    || plan.pelgrom_avts.is_empty()
                    || plan.metrics.is_empty()
                {
                    return Err(JobError::BadSpec {
                        detail: "every sweep axis needs at least one point".to_string(),
                    });
                }
                if !(plan.spec_factor.is_finite() && plan.spec_factor > 0.0) {
                    return Err(JobError::BadSpec {
                        detail: "spec factor must be positive and finite".to_string(),
                    });
                }
                let scenarios = guarded(|| plan.scenarios())?;
                scenarios
                    .into_iter()
                    .map(|scenario| {
                        let problem = guarded(|| scenario.problem(plan.spec_factor))?;
                        Ok(BuiltProblem {
                            name: scenario.name.clone(),
                            identity: scenario_identity(&scenario, plan.spec_factor),
                            problem,
                        })
                    })
                    .collect()
            }
            ProblemSpec::SurrogateSram {
                metric,
                spec_factor,
                padded_dimensions,
            } => {
                validate_spec_factor(*spec_factor)?;
                let cell = SramCellConfig::typical_45nm();
                let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
                let mut model =
                    SramSurrogateModel::new(SramSurrogate::typical_45nm(), space, *metric);
                if *padded_dimensions > 0 {
                    model = model.with_padded_dimensions(*padded_dimensions, 0.02);
                }
                let nominal = model.nominal_metric();
                Ok(vec![BuiltProblem {
                    name: metric.name().to_string(),
                    identity: self.to_value(),
                    problem: FailureProblem::from_model(
                        model,
                        Spec::UpperLimit(nominal * spec_factor),
                    ),
                }])
            }
            ProblemSpec::TransientSram {
                metric,
                spec_factor,
                timing,
            } => {
                validate_spec_factor(*spec_factor)?;
                let cell = SramCellConfig::typical_45nm();
                let testbench = match timing {
                    Some(timing) => {
                        SramTestbench::new(cell.clone(), timing.clone()).map_err(|e| {
                            JobError::BadSpec {
                                detail: format!("invalid testbench timing: {e}"),
                            }
                        })?
                    }
                    None => SramTestbench::typical_45nm(),
                };
                let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
                let model = SramTransientModel::new(testbench, space, *metric);
                let nominal = guarded(|| model.nominal_metric())?;
                Ok(vec![BuiltProblem {
                    name: metric.name().to_string(),
                    identity: self.to_value(),
                    problem: FailureProblem::from_model(
                        model,
                        Spec::UpperLimit(nominal * spec_factor),
                    ),
                }])
            }
        }
    }
}

/// The per-scenario identity of a plan cell: the scenario (which pins the
/// operating point and the metric) plus the plan's spec factor, which the
/// scenario name does not encode. Two plans sharing a scenario at the same
/// spec factor share its cells.
fn scenario_identity(scenario: &Scenario, spec_factor: f64) -> serde::Value {
    serde::Value::Object(vec![
        ("kind".to_string(), "scenario".to_string().to_value()),
        ("scenario".to_string(), scenario.to_value()),
        ("spec_factor".to_string(), spec_factor.to_value()),
    ])
}

fn validate_spec_factor(spec_factor: f64) -> Result<(), JobError> {
    if spec_factor.is_finite() && spec_factor > 0.0 {
        Ok(())
    } else {
        Err(JobError::BadSpec {
            detail: "spec factor must be positive and finite".to_string(),
        })
    }
}

/// Runs `f` converting any panic into a typed [`JobError`] — the model
/// builders of `gis_core` assert their domain (e.g. an operating point
/// that drives a threshold voltage negative), and a hostile or buggy job
/// spec must fail its own submission, never the server.
fn guarded<T>(f: impl FnOnce() -> T) -> Result<T, JobError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "model construction panicked".to_string()
        };
        JobError::BadSpec { detail }
    })
}

/// One estimator, specified by its full serializable configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EstimatorSpec {
    /// Gradient importance sampling (`"gradient-is"`).
    GradientIs {
        /// Full estimator configuration.
        config: GisConfig,
    },
    /// Brute-force Monte Carlo (`"monte-carlo"`).
    MonteCarlo {
        /// Full estimator configuration.
        config: MonteCarloConfig,
    },
    /// Minimum-norm importance sampling (`"minimum-norm-is"`).
    MinimumNormIs {
        /// Full estimator configuration.
        config: MnisConfig,
    },
    /// Spherical sampling (`"spherical-sampling"`).
    SphericalSampling {
        /// Full estimator configuration.
        config: SphericalSamplingConfig,
    },
    /// Scaled-sigma sampling (`"scaled-sigma-sampling"`).
    ScaledSigmaSampling {
        /// Full estimator configuration.
        config: SssConfig,
    },
}

impl EstimatorSpec {
    /// The five standard estimators with default configurations — the
    /// serializable mirror of [`gis_core::standard_estimators`].
    pub fn standard() -> Vec<EstimatorSpec> {
        vec![
            EstimatorSpec::GradientIs {
                config: GisConfig::default(),
            },
            EstimatorSpec::MonteCarlo {
                config: MonteCarloConfig::default(),
            },
            EstimatorSpec::MinimumNormIs {
                config: MnisConfig::default(),
            },
            EstimatorSpec::SphericalSampling {
                config: SphericalSamplingConfig::default(),
            },
            EstimatorSpec::ScaledSigmaSampling {
                config: SssConfig::default(),
            },
        ]
    }

    /// The estimator's stable method name (matches
    /// [`gis_core::Estimator::name`] of the built estimator).
    pub fn method_name(&self) -> &'static str {
        match self {
            EstimatorSpec::GradientIs { .. } => "gradient-is",
            EstimatorSpec::MonteCarlo { .. } => "monte-carlo",
            EstimatorSpec::MinimumNormIs { .. } => "minimum-norm-is",
            EstimatorSpec::SphericalSampling { .. } => "spherical-sampling",
            EstimatorSpec::ScaledSigmaSampling { .. } => "scaled-sigma-sampling",
        }
    }

    /// Builds the live estimator.
    pub fn build(&self) -> Box<dyn Estimator> {
        match self {
            EstimatorSpec::GradientIs { config } => {
                Box::new(GradientImportanceSampling::new(config.clone()))
            }
            EstimatorSpec::MonteCarlo { config } => Box::new(MonteCarlo::new(config.clone())),
            EstimatorSpec::MinimumNormIs { config } => Box::new(MinimumNormIs::new(config.clone())),
            EstimatorSpec::SphericalSampling { config } => {
                Box::new(SphericalSampling::new(config.clone()))
            }
            EstimatorSpec::ScaledSigmaSampling { config } => {
                Box::new(ScaledSigmaSampling::new(config.clone()))
            }
        }
    }
}

/// One submitted job: a problem family, an estimator line-up, and the
/// seeding/stopping configuration the sweep checkpoint validates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which problems to run.
    pub problem: ProblemSpec,
    /// Which estimators to run against every problem.
    pub estimators: Vec<EstimatorSpec>,
    /// Master seed all per-cell streams derive from.
    pub master_seed: u64,
    /// Uniform convergence policy (`None` = each estimator's own config).
    pub policy: Option<ConvergencePolicy>,
    /// Dependency-aware continuation mode (`Some(true)` = warm): cells of a
    /// [`ProblemSpec::Plan`] grid seed their searches from their donor
    /// scenario's diagnostics ([`SweepPlan::warm_donors`]). `None` or
    /// `Some(false)` — and every non-plan problem family, which has no grid
    /// adjacency — runs blind. Warm cells carry their donor in the cache
    /// key, so a warm job never aliases a blind job's cells. Optional so
    /// pre-continuation clients (which omit the field) keep submitting
    /// blind jobs unchanged.
    pub warm_start: Option<bool>,
    /// Per-job wall-clock deadline in milliseconds, enforced server-side:
    /// once it elapses, cells not yet started are quarantined as typed
    /// `deadline-exceeded` failures (never cached) and the job terminates
    /// with a partial [`crate::protocol::Reply::Done`]. `None` (and absent,
    /// for pre-deadline clients) = no deadline. The deadline is excluded
    /// from [`cell_key`], so cells computed under a deadline are shared
    /// with deadline-free jobs and vice versa.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// Content-addressed job id: identical specs — same problems, same
    /// estimator configs, same seed and policy — get identical ids.
    pub fn job_id(&self) -> String {
        // Serializing an in-memory spec cannot fail.
        let canonical = serde_json::to_string(self).unwrap_or_else(|_| format!("{self:?}"));
        format!("job-{:016x}", fnv1a(&canonical))
    }
}

/// Typed rejection of a job submission.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job listed no estimators.
    NoEstimators,
    /// Two estimators of the job share a method name: the per-cell seed
    /// derivation and the report are keyed by name, so duplicates would
    /// alias each other's cells.
    DuplicateEstimator {
        /// The repeated method name.
        name: String,
    },
    /// The suite name is not one the server knows.
    UnknownSuite {
        /// The offending name.
        suite: String,
    },
    /// The problem specification is invalid (bad axis, bad timing, bad
    /// spec factor, or a model-domain violation).
    BadSpec {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::NoEstimators => write!(f, "job lists no estimators"),
            JobError::DuplicateEstimator { name } => {
                write!(
                    f,
                    "duplicate estimator {name:?}: cells are keyed by method name"
                )
            }
            JobError::UnknownSuite { suite } => {
                write!(
                    f,
                    "unknown suite {suite:?} (expected \"fast\" or \"standard\")"
                )
            }
            JobError::BadSpec { detail } => write!(f, "invalid problem spec: {detail}"),
        }
    }
}

impl std::error::Error for JobError {}

/// One cell of a planned job: the indices into the prepared analysis, the
/// names, and the content-addressed cache key.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCell {
    /// Problem index into the job's analysis.
    pub problem_index: usize,
    /// Estimator index into the job's analysis.
    pub estimator_index: usize,
    /// Problem name.
    pub problem: String,
    /// Estimator method name.
    pub estimator: String,
    /// Donor problem this cell warm-starts from (`None` = blind). Donors
    /// always precede their dependents in registration order, so the
    /// sequential job loop completes every donor before its dependents
    /// claim their hints.
    pub warm_from: Option<String>,
    /// Content-addressed cache key ([`cell_key`]).
    pub key: String,
}

/// A validated, ready-to-run job: the prepared [`YieldAnalysis`] plus the
/// cell list in registration order (problem-major, estimator-minor — the
/// same order the batch engine assembles reports in).
pub struct JobPlan {
    /// Content-addressed job id.
    pub job_id: String,
    /// The prepared analysis (problems registered, estimators configured,
    /// policy and execution applied).
    pub analysis: YieldAnalysis,
    /// Every (problem, estimator) cell, in registration order.
    pub cells: Vec<JobCell>,
    /// Problem names, in registration order.
    pub problem_names: Vec<String>,
    /// Estimator method names, in registration order.
    pub estimator_names: Vec<String>,
}

/// Canonical cache key of one cell: the canonical JSON of everything that
/// pins the cell's result — problem identity, problem name, the full
/// estimator spec, master seed, convergence policy, the derived per-cell
/// seed and (for continuation-mode cells) the warm-start donor. This is
/// the same identity set the sweep checkpoint validates on restore, so
/// "cache hit" and "checkpoint restore" agree on when two cells are the
/// same computation.
///
/// A warm cell's result depends on its donor's diagnostics, so the donor
/// name is part of the identity — a warm cell and the blind cell of the
/// same scenario never alias. The `warm_from` entry is appended only when
/// present, which keeps blind keys byte-identical to pre-continuation
/// journals (their replayed entries still hit).
pub fn cell_key(
    identity: &serde::Value,
    problem: &str,
    estimator: &EstimatorSpec,
    master_seed: u64,
    policy: &Option<ConvergencePolicy>,
    derived_seed: u64,
    warm_from: Option<&str>,
) -> String {
    let mut fields = vec![
        ("v".to_string(), 1u32.to_value()),
        ("problem".to_string(), identity.clone()),
        ("name".to_string(), problem.to_value()),
        ("estimator".to_string(), estimator.to_value()),
        ("master_seed".to_string(), master_seed.to_value()),
        ("policy".to_string(), policy.to_value()),
        ("seed".to_string(), derived_seed.to_value()),
    ];
    if let Some(donor) = warm_from {
        fields.push(("warm_from".to_string(), donor.to_value()));
    }
    let value = serde::Value::Object(fields);
    // Serializing an in-memory value cannot fail.
    serde_json::to_string(&value).unwrap_or_else(|_| format!("{value:?}"))
}

/// Validates `spec` and prepares it for execution under the server's
/// `execution` configuration: problems rebuilt, estimators constructed,
/// policy applied, per-cell seeds derived and cache keys computed.
pub fn plan_job(spec: &JobSpec, execution: ExecutionConfig) -> Result<JobPlan, JobError> {
    if spec.estimators.is_empty() {
        return Err(JobError::NoEstimators);
    }
    let mut seen = std::collections::BTreeSet::new();
    for estimator in &spec.estimators {
        if !seen.insert(estimator.method_name()) {
            return Err(JobError::DuplicateEstimator {
                name: estimator.method_name().to_string(),
            });
        }
    }
    let problems = spec.problem.build()?;
    {
        let mut names = std::collections::BTreeSet::new();
        for p in &problems {
            if !names.insert(p.name.as_str()) {
                return Err(JobError::BadSpec {
                    detail: format!("duplicate problem name {:?}", p.name),
                });
            }
        }
    }

    let mut analysis = YieldAnalysis::new()
        .master_seed(spec.master_seed)
        .execution(execution);
    if let Some(policy) = spec.policy {
        analysis = analysis.convergence_policy(policy);
    }
    let mut identities = Vec::with_capacity(problems.len());
    let mut problem_names = Vec::with_capacity(problems.len());
    for built in problems {
        problem_names.push(built.name.clone());
        identities.push(built.identity);
        analysis = analysis.problem(built.name, built.problem);
    }
    for estimator in &spec.estimators {
        analysis = analysis.estimator(estimator.build());
    }
    analysis.prepare();

    let estimator_names: Vec<String> = spec
        .estimators
        .iter()
        .map(|e| e.method_name().to_string())
        .collect();
    // Continuation mode only has grid adjacency to exploit on a sweep
    // plan; every other problem family stays blind even when requested.
    let donors = match (&spec.problem, spec.warm_start.unwrap_or(false)) {
        (ProblemSpec::Plan { plan }, true) => plan.warm_donors(),
        _ => std::collections::BTreeMap::new(),
    };
    let mut cells = Vec::with_capacity(problem_names.len() * estimator_names.len());
    for (pi, problem) in problem_names.iter().enumerate() {
        for (ei, estimator) in spec.estimators.iter().enumerate() {
            let derived = analysis.derived_seed(problem, estimator.method_name());
            let warm_from = donors.get(problem).cloned();
            cells.push(JobCell {
                problem_index: pi,
                estimator_index: ei,
                problem: problem.clone(),
                estimator: estimator.method_name().to_string(),
                key: cell_key(
                    &identities[pi],
                    problem,
                    estimator,
                    spec.master_seed,
                    &spec.policy,
                    derived,
                    warm_from.as_deref(),
                ),
                warm_from,
            });
        }
    }
    Ok(JobPlan {
        job_id: spec.job_id(),
        analysis,
        cells,
        problem_names,
        estimator_names,
    })
}
