//! Client side of the daemon protocol: connect, submit, stream, collect.
//!
//! This is the library the thin CLI clients (`bench_sweep --connect`, the
//! table drivers) and the tests are built on. All wire failures map to a
//! typed [`ClientError`]; nothing here panics on network data.

use crate::job::JobSpec;
use crate::protocol::{
    parse_reply, read_frame, write_request, ProtocolError, Reply, Request, ServerStatus,
    DEFAULT_MAX_REPLY_BYTES, PROTOCOL_VERSION,
};
use gis_core::{AnalysisReport, MethodReport};
use std::io::BufReader;
use std::net::TcpStream;

/// Typed client-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or mid-stream EOF —
    /// the signature of a server killed while streaming).
    Io {
        /// IO detail.
        detail: String,
    },
    /// The server spoke something this client cannot parse, or replied
    /// out of protocol (e.g. a `Cell` before an `Accepted`).
    Protocol {
        /// Detail.
        detail: String,
    },
    /// The server rejected the request with a typed error reply.
    Server {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io { detail } => write!(f, "transport error: {detail}"),
            ClientError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io { detail } => ClientError::Io { detail },
            other => ClientError::Protocol {
                detail: other.to_string(),
            },
        }
    }
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Io {
        detail: e.to_string(),
    }
}

/// One streamed cell of a running job, handed to the progress callback of
/// [`Client::submit`].
#[derive(Debug)]
pub struct CellProgress<'a> {
    /// Problem (scenario) name.
    pub problem: &'a str,
    /// Estimator name.
    pub estimator: &'a str,
    /// Cells completed so far, this one included.
    pub completed_cells: usize,
    /// Total cells of the job.
    pub total_cells: usize,
    /// `true` when the cell came from the server's cache.
    pub cached: bool,
    /// The cell's full method report.
    pub report: &'a MethodReport,
}

/// Everything a finished job returns.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReceipt {
    /// Content-addressed job id.
    pub job_id: String,
    /// Cells the server executed for this job.
    pub cells_executed: usize,
    /// Cells the server served from its cache.
    pub cells_cached: usize,
    /// The assembled report, bit-identical to the batch path.
    pub report: AnalysisReport,
}

/// A connected daemon client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_reply_bytes: usize,
}

impl Client {
    /// Connects and validates the server's hello (name and protocol
    /// version).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            max_reply_bytes: DEFAULT_MAX_REPLY_BYTES,
        };
        match client.read_reply()? {
            Reply::Hello { protocol, .. } if protocol == PROTOCOL_VERSION => Ok(client),
            Reply::Hello { protocol, .. } => Err(ClientError::Protocol {
                detail: format!(
                    "server speaks protocol {protocol}, this client speaks {PROTOCOL_VERSION}"
                ),
            }),
            other => Err(ClientError::Protocol {
                detail: format!("expected a hello, got {other:?}"),
            }),
        }
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let line = read_frame(&mut self.reader, self.max_reply_bytes)?;
        let Some(line) = line else {
            return Err(ClientError::Io {
                detail: "connection closed by server".to_string(),
            });
        };
        Ok(parse_reply(&line)?)
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_request(&mut self.writer, request).map_err(io_err)
    }

    /// Submits a job and streams it to completion. `on_cell` fires once
    /// per cell, in registration order; the receipt carries the assembled
    /// report. A server kill mid-stream surfaces as [`ClientError::Io`].
    pub fn submit(
        &mut self,
        job: &JobSpec,
        on_cell: &mut dyn FnMut(&CellProgress<'_>),
    ) -> Result<JobReceipt, ClientError> {
        self.send(&Request::Submit { job: job.clone() })?;
        let job_id = match self.read_reply()? {
            Reply::Accepted { job_id, .. } => job_id,
            Reply::Error { code, message } => return Err(ClientError::Server { code, message }),
            other => {
                return Err(ClientError::Protocol {
                    detail: format!("expected accepted/error, got {other:?}"),
                })
            }
        };
        loop {
            match self.read_reply()? {
                Reply::Cell {
                    problem,
                    estimator,
                    completed_cells,
                    total_cells,
                    cached,
                    report,
                    ..
                } => {
                    on_cell(&CellProgress {
                        problem: &problem,
                        estimator: &estimator,
                        completed_cells,
                        total_cells,
                        cached,
                        report: &report,
                    });
                }
                Reply::Done {
                    job_id: done_id,
                    cells_executed,
                    cells_cached,
                    report,
                } => {
                    if done_id != job_id {
                        return Err(ClientError::Protocol {
                            detail: format!("done for job {done_id}, expected {job_id}"),
                        });
                    }
                    return Ok(JobReceipt {
                        job_id: done_id,
                        cells_executed,
                        cells_cached,
                        report,
                    });
                }
                Reply::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => {
                    return Err(ClientError::Protocol {
                        detail: format!("unexpected reply mid-job: {other:?}"),
                    })
                }
            }
        }
    }

    /// Fetches the server's lifetime counters.
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        self.send(&Request::Status)?;
        match self.read_reply()? {
            Reply::Status { status } => Ok(status),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol {
                detail: format!("expected status, got {other:?}"),
            }),
        }
    }

    /// Asks the server to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.read_reply()? {
            Reply::ShuttingDown => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol {
                detail: format!("expected shutdown ack, got {other:?}"),
            }),
        }
    }
}
