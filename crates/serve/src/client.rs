//! Client side of the daemon protocol: connect, submit, stream, collect.
//!
//! This is the library the thin CLI clients (`bench_sweep --connect`, the
//! table drivers) and the tests are built on. All wire failures map to a
//! typed [`ClientError`]; nothing here panics on network data.

use crate::job::JobSpec;
use crate::protocol::{
    parse_reply, read_frame, write_request, ProtocolError, Reply, Request, ServerStatus,
    DEFAULT_MAX_REPLY_BYTES, PROTOCOL_VERSION,
};
use gis_core::{AnalysisReport, MethodReport};
use std::io::BufReader;
use std::net::TcpStream;

/// Typed client-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or mid-stream EOF —
    /// the signature of a server killed while streaming).
    Io {
        /// IO detail.
        detail: String,
    },
    /// The server spoke something this client cannot parse, or replied
    /// out of protocol (e.g. a `Cell` before an `Accepted`).
    Protocol {
        /// Detail.
        detail: String,
    },
    /// The server rejected the request with a typed error reply.
    Server {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io { detail } => write!(f, "transport error: {detail}"),
            ClientError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io { detail } => ClientError::Io { detail },
            other => ClientError::Protocol {
                detail: other.to_string(),
            },
        }
    }
}

fn io_err(e: std::io::Error) -> ClientError {
    ClientError::Io {
        detail: e.to_string(),
    }
}

/// One streamed cell of a running job, handed to the progress callback of
/// [`Client::submit`].
#[derive(Debug)]
pub struct CellProgress<'a> {
    /// Problem (scenario) name.
    pub problem: &'a str,
    /// Estimator name.
    pub estimator: &'a str,
    /// Cells completed so far, this one included.
    pub completed_cells: usize,
    /// Total cells of the job.
    pub total_cells: usize,
    /// `true` when the cell came from the server's cache.
    pub cached: bool,
    /// The cell's full method report.
    pub report: &'a MethodReport,
}

/// Everything a finished job returns.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReceipt {
    /// Content-addressed job id.
    pub job_id: String,
    /// Cells the server executed for this job.
    pub cells_executed: usize,
    /// Cells the server served from its cache.
    pub cells_cached: usize,
    /// The assembled report, bit-identical to the batch path.
    pub report: AnalysisReport,
    /// `true` when the job's deadline elapsed mid-run and cells past it
    /// are typed `deadline-exceeded` placeholders.
    pub partial: bool,
    /// Reconnections [`submit_with_recovery`] performed before the job
    /// finished (0 from plain [`Client::submit`]).
    pub reconnects: u32,
}

/// A connected daemon client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_reply_bytes: usize,
}

impl Client {
    /// Connects and validates the server's hello (name and protocol
    /// version).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            max_reply_bytes: DEFAULT_MAX_REPLY_BYTES,
        };
        match client.read_reply()? {
            Reply::Hello { protocol, .. } if protocol == PROTOCOL_VERSION => Ok(client),
            Reply::Hello { protocol, .. } => Err(ClientError::Protocol {
                detail: format!(
                    "server speaks protocol {protocol}, this client speaks {PROTOCOL_VERSION}"
                ),
            }),
            other => Err(ClientError::Protocol {
                detail: format!("expected a hello, got {other:?}"),
            }),
        }
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let line = read_frame(&mut self.reader, self.max_reply_bytes)?;
        let Some(line) = line else {
            return Err(ClientError::Io {
                detail: "connection closed by server".to_string(),
            });
        };
        Ok(parse_reply(&line)?)
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_request(&mut self.writer, request).map_err(io_err)
    }

    /// Submits a job and streams it to completion. `on_cell` fires once
    /// per cell, in registration order; the receipt carries the assembled
    /// report. A server kill mid-stream surfaces as [`ClientError::Io`].
    pub fn submit(
        &mut self,
        job: &JobSpec,
        on_cell: &mut dyn FnMut(&CellProgress<'_>),
    ) -> Result<JobReceipt, ClientError> {
        self.send(&Request::Submit { job: job.clone() })?;
        let job_id = match self.read_reply()? {
            Reply::Accepted { job_id, .. } => job_id,
            Reply::Error { code, message } => return Err(ClientError::Server { code, message }),
            other => {
                return Err(ClientError::Protocol {
                    detail: format!("expected accepted/error, got {other:?}"),
                })
            }
        };
        loop {
            match self.read_reply()? {
                Reply::Cell {
                    problem,
                    estimator,
                    completed_cells,
                    total_cells,
                    cached,
                    report,
                    ..
                } => {
                    on_cell(&CellProgress {
                        problem: &problem,
                        estimator: &estimator,
                        completed_cells,
                        total_cells,
                        cached,
                        report: &report,
                    });
                }
                Reply::Done {
                    job_id: done_id,
                    cells_executed,
                    cells_cached,
                    report,
                    partial,
                } => {
                    if done_id != job_id {
                        return Err(ClientError::Protocol {
                            detail: format!("done for job {done_id}, expected {job_id}"),
                        });
                    }
                    return Ok(JobReceipt {
                        job_id: done_id,
                        cells_executed,
                        cells_cached,
                        report,
                        partial: partial.unwrap_or(false),
                        reconnects: 0,
                    });
                }
                Reply::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => {
                    return Err(ClientError::Protocol {
                        detail: format!("unexpected reply mid-job: {other:?}"),
                    })
                }
            }
        }
    }

    /// Fetches the server's lifetime counters.
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        self.send(&Request::Status)?;
        match self.read_reply()? {
            Reply::Status { status } => Ok(status),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol {
                detail: format!("expected status, got {other:?}"),
            }),
        }
    }

    /// Asks the server to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.read_reply()? {
            Reply::ShuttingDown => Ok(()),
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol {
                detail: format!("expected shutdown ack, got {other:?}"),
            }),
        }
    }
}

/// Reconnect/retry policy of the self-healing client entry points.
///
/// Delays grow exponentially from `base_delay_ms`, capped at
/// `max_delay_ms`, with deterministic jitter derived by hashing
/// `(jitter_seed, attempt)` — no clock or OS randomness, so tests and
/// replays see identical schedules. The jitter spreads a fleet of clients
/// that lost the same server across ±25 % of the nominal delay.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total connection/submission attempts (the first try included).
    pub max_attempts: u32,
    /// Delay before the second attempt, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1 = the delay after the
    /// first failure). Exponential with cap, plus deterministic ±25 %
    /// jitter.
    pub fn delay_for(&self, attempt: u32) -> std::time::Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let nominal = self
            .base_delay_ms
            .saturating_mul(1u64 << doublings)
            .min(self.max_delay_ms.max(1));
        // splitmix64-style hash of (seed, attempt): well-spread, std-only.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map the hash to [-nominal/4, +nominal/4].
        let half_span = (nominal / 2).max(1);
        let jitter = (z % half_span) as i64 - (half_span / 2) as i64;
        let delayed = nominal.saturating_add_signed(jitter);
        std::time::Duration::from_millis(delayed.min(self.max_delay_ms.max(1)))
    }
}

/// Whether an error is worth a reconnect: transport failures and torn
/// mid-stream frames (a dying server) are transient; a typed server
/// rejection is a property of the request and retries would re-fail.
fn is_transient(error: &ClientError) -> bool {
    matches!(error, ClientError::Io { .. } | ClientError::Protocol { .. })
}

/// [`Client::connect`] with reconnection: retries transient failures under
/// `policy`, sleeping the policy's backoff between attempts.
pub fn connect_with_retry(addr: &str, policy: &RetryPolicy) -> Result<Client, ClientError> {
    let mut last = None;
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(policy.delay_for(attempt));
        }
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) if is_transient(&e) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(ClientError::Io {
        detail: "no connection attempt was made".to_string(),
    }))
}

/// Submits `job` and survives the server dying mid-stream: on a transient
/// failure the job is resubmitted over a fresh connection under `policy`.
///
/// Resubmission is idempotent by construction — the job id is
/// content-addressed and every completed cell is in the server's
/// journal-backed cache, so a resubmitted job replays finished cells as
/// cache hits and only computes what the interruption left undone.
/// `on_cell` never sees a cell twice: progress replayed below the
/// high-water mark of an earlier attempt is swallowed. The receipt's
/// `reconnects` counts how many fresh connections the job needed beyond
/// the first.
pub fn submit_with_recovery(
    addr: &str,
    job: &JobSpec,
    policy: &RetryPolicy,
    on_cell: &mut dyn FnMut(&CellProgress<'_>),
) -> Result<JobReceipt, ClientError> {
    let mut reconnects = 0u32;
    let mut high_water = 0usize;
    let mut last = None;
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            reconnects += 1;
            std::thread::sleep(policy.delay_for(attempt));
        }
        let mut client = match Client::connect(addr) {
            Ok(client) => client,
            Err(e) if is_transient(&e) => {
                last = Some(e);
                continue;
            }
            Err(e) => return Err(e),
        };
        let mut dedup = |progress: &CellProgress<'_>| {
            if progress.completed_cells > high_water {
                high_water = progress.completed_cells;
                on_cell(progress);
            }
        };
        match client.submit(job, &mut dedup) {
            Ok(mut receipt) => {
                receipt.reconnects = reconnects;
                return Ok(receipt);
            }
            Err(e) if is_transient(&e) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(ClientError::Io {
        detail: "no submission attempt was made".to_string(),
    }))
}
