//! The `gis-serve` daemon binary.
//!
//! ```text
//! gis-serve [--addr HOST:PORT] [--journal PATH] [--port-file PATH]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:0`, an ephemeral port).
//! * `--journal PATH` — durable JSON-lines journal; replayed on boot so a
//!   restarted daemon serves already-completed cells from cache.
//! * `--port-file PATH` — write the bound address (one line) once
//!   listening; scripts launching the daemon with an ephemeral port poll
//!   this file to discover where to connect.
//!
//! The process exits cleanly when a client sends a `Shutdown` request.

// Daemon entry point: abort-on-error is the right failure mode for
// startup (bind/journal failures must be loud), and the library layers
// behind it never panic on wire data.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![forbid(unsafe_code)]

use gis_serve::{Server, ServerConfig};
use std::path::PathBuf;

fn parse_flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: gis-serve [--addr HOST:PORT] [--journal PATH] [--port-file PATH]");
        return;
    }
    let mut config = ServerConfig::default();
    if let Some(addr) = parse_flag_value(&args, "--addr") {
        config.bind_addr = addr;
    }
    if let Some(journal) = parse_flag_value(&args, "--journal") {
        config.journal = Some(PathBuf::from(journal));
    }
    let port_file = parse_flag_value(&args, "--port-file").map(PathBuf::from);

    let server = Server::bind(config).expect("gis-serve: bind failed");
    let addr = server.local_addr().expect("gis-serve: no local address");
    println!("gis-serve listening on {addr}");
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{addr}\n")).expect("gis-serve: port file is writable");
    }
    server.run();
    println!("gis-serve: shut down");
}
