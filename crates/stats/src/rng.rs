//! Reproducible random number streams.
//!
//! Every estimator in the suite takes an explicit [`RngStream`] so that whole
//! experiments are reproducible from a single seed and so that independent
//! replications (the "20 Monte Carlo runs" style of evaluation) can be derived
//! from one master seed without accidental stream overlap.

use gis_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, splittable random number stream.
///
/// Internally wraps [`rand::rngs::StdRng`] (ChaCha-based) and adds the normal
/// variate generation and stream-splitting conveniences used across the suite.
///
/// # Examples
///
/// ```
/// use gis_stats::RngStream;
///
/// let mut a = RngStream::from_seed(7);
/// let mut b = RngStream::from_seed(7);
/// assert_eq!(a.uniform(), b.uniform());
///
/// // Derived streams are independent of the parent and of each other.
/// let mut c = a.split(0);
/// let mut d = a.split(1);
/// assert_ne!(c.uniform(), d.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
    seed: u64,
    /// Cached second Box–Muller variate.
    cached_normal: Option<f64>,
}

impl RngStream {
    /// Creates a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            rng: StdRng::seed_from_u64(seed),
            seed,
            cached_normal: None,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `index`.
    ///
    /// The child seed mixes the parent seed and the index through a
    /// SplitMix64-style finalizer, so `split(0)`, `split(1)`, … are
    /// statistically independent of each other and of the parent.
    pub fn split(&self, index: u64) -> RngStream {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        RngStream::from_seed(z)
    }

    /// Uniform random number in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform random number in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_in(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "uniform_in requires low < high");
        low + (high - low) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_index requires n > 0");
        self.rng.gen_range(0..n)
    }

    /// Standard normal variate via the Box–Muller transform (with caching of
    /// the second variate of each pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Box–Muller: avoid u1 == 0.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Vector of `dim` independent standard normal variates.
    pub fn standard_normal_vector(&mut self, dim: usize) -> Vector {
        (0..dim).map(|_| self.standard_normal()).collect()
    }

    /// Fisher–Yates shuffle of a mutable slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an index according to the (unnormalized, non-negative) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must not be empty");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "weights must be non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let target = self.uniform() * total;
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            if target < acc {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::from_seed(123);
        let mut b = RngStream::from_seed(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::from_seed(1);
        let mut b = RngStream::from_seed(2);
        let same = (0..50).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn split_streams_are_reproducible_and_distinct() {
        let parent = RngStream::from_seed(99);
        let mut c1 = parent.split(3);
        let mut c2 = parent.split(3);
        assert_eq!(c1.uniform(), c2.uniform());
        let mut c3 = parent.split(4);
        assert_ne!(c1.uniform(), c3.uniform());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = RngStream::from_seed(2024);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = rng.standard_normal();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = RngStream::from_seed(5);
        for _ in 0..1000 {
            let x = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_index_in_range() {
        let mut rng = RngStream::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.uniform_index(7) < 7);
        }
    }

    #[test]
    fn normal_vector_has_right_length() {
        let mut rng = RngStream::from_seed(5);
        let v = rng.standard_normal_vector(12);
        assert_eq!(v.len(), 12);
        assert!(v.is_finite());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = RngStream::from_seed(11);
        let mut data: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = RngStream::from_seed(8);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(rng.weighted_index(&weights), 2);
        }
        // Roughly proportional sampling.
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn weighted_index_rejects_all_zero() {
        RngStream::from_seed(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn normal_with_mean_and_std() {
        let mut rng = RngStream::from_seed(77);
        let n = 50_000;
        let mean_target = 3.0;
        let std_target = 0.5;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.normal(mean_target, std_target);
        }
        assert!((sum / n as f64 - mean_target).abs() < 0.02);
    }
}
