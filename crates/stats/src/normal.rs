//! Standard (univariate) normal distribution: density, CDF, quantile and
//! sigma-level conversions with tail accuracy good to beyond 8σ.
//!
//! High-sigma extraction lives in the far tail of the normal distribution;
//! converting a failure probability of 10⁻⁹ to "6.0σ" requires a quantile
//! function that is accurate there. [`erfc`] is computed by a series /
//! continued-fraction split (the Maclaurin series of erf for small arguments,
//! the Legendre continued fraction of the upper incomplete gamma function
//! `Γ(½, x²)` otherwise), which is accurate to ~1e-15 *relative* error across
//! the entire tail — earlier revisions topped out at the ~1.2e-7 of a rational
//! approximation, which capped every sigma-level conversion downstream. The
//! quantile is Acklam's algorithm polished by one Halley step against the
//! high-accuracy CDF.

/// `1 / sqrt(2π)`.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Standard normal probability density function `φ(x)`.
///
/// ```
/// use gis_stats::normal::pdf;
/// assert!((pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Natural log of the standard normal density.
pub fn log_pdf(x: f64) -> f64 {
    INV_SQRT_2PI.ln() - 0.5 * x * x
}

/// Complementary error function `erfc(x)`, accurate to ~1e-15 relative error
/// across the entire tail (the value keeps full *relative* precision down to
/// the underflow threshold, so `erfc(8) ≈ 1.12e-29` carries ~15 correct
/// digits).
///
/// Implementation: for |x| < 1.25 use the Maclaurin series of erf (cancellation
/// in `1 − erf` costs less than one digit there); otherwise use the identity
/// `erfc(x) = Q(½, x²)` with the Legendre continued fraction of the regularized
/// upper incomplete gamma function, evaluated by the modified Lentz algorithm.
/// Both branches converge to machine precision — no polynomial approximation is
/// involved.
pub fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let result = if ax < 1.25 {
        1.0 - erf_series(ax)
    } else {
        erfc_continued_fraction(ax)
    };
    if x >= 0.0 {
        result
    } else {
        2.0 - result
    }
}

/// Legendre continued fraction for `erfc(z) = Q(½, z²)`, valid (and rapidly
/// convergent) for `z ≥ 1.25`, i.e. `z² ≥ a + 1` with `a = ½`.
fn erfc_continued_fraction(z: f64) -> f64 {
    const A: f64 = 0.5;
    let x = z * z;
    // Modified Lentz evaluation of
    //   Q(a, x) = exp(-x + a·ln x - lnΓ(a)) / (x+1-a - 1(1-a)/(x+3-a - ...)).
    let tiny = 1e-300;
    let mut b = x + 1.0 - A;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..200 {
        let an = -(i as f64) * (i as f64 - A);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        // One-ulp convergence: a sub-ulp tolerance would only terminate when
        // delta rounds to exactly 1.0 and otherwise burn the iteration cap.
        if (delta - 1.0).abs() < f64::EPSILON {
            break;
        }
    }
    // exp(-x + a·ln x - lnΓ(½)) = exp(-z²) · z / √π.
    (-x).exp() * z / std::f64::consts::PI.sqrt() * h
}

/// Series expansion of erf for small arguments.
fn erf_series(x: f64) -> f64 {
    const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..60 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-18 * sum.abs() {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use gis_stats::normal::cdf;
/// assert!((cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!(cdf(8.0) > 0.999999999);
/// ```
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Upper-tail probability `Q(x) = 1 − Φ(x) = Φ(−x)`, computed without
/// catastrophic cancellation for large `x`.
///
/// ```
/// use gis_stats::normal::upper_tail_probability;
/// let q = upper_tail_probability(6.0);
/// assert!(q > 0.0 && q < 1.1e-9);
/// ```
pub fn upper_tail_probability(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (`Φ⁻¹`), Acklam's algorithm followed by one
/// Halley refinement step.
///
/// # Panics
///
/// Panics if `p` is not inside the open interval `(0, 1)`.
///
/// ```
/// use gis_stats::normal::{cdf, quantile};
/// for &x in &[-5.0, -1.0, 0.0, 2.5, 6.0] {
///     assert!((quantile(cdf(x)) - x).abs() < 1e-8);
/// }
/// ```
pub fn quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the high-accuracy cdf.
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Converts an upper-tail failure probability to the equivalent sigma level,
/// i.e. the `n` such that `P(X > n) = p` for a standard normal `X`.
///
/// # Panics
///
/// Panics if `p` is not inside the open interval `(0, 1)`.
///
/// ```
/// use gis_stats::normal::sigma_level;
/// assert!((sigma_level(0.5) - 0.0).abs() < 1e-12);
/// assert!((sigma_level(1.3498980316300946e-3) - 3.0).abs() < 1e-8);
/// ```
pub fn sigma_level(p: f64) -> f64 {
    -quantile(p)
}

/// Mills ratio based asymptotic upper tail, useful as an independent
/// cross-check of the continued-fraction `erfc` at very large sigma.
///
/// For `x ≥ 8` this agrees with the exact tail to better than 1.5%.
pub fn upper_tail_asymptotic(x: f64) -> f64 {
    if x <= 0.0 {
        return 0.5;
    }
    let x2 = x * x;
    // Q(x) ≈ φ(x)/x · (1 − 1/x² + 3/x⁴ − 15/x⁶)
    pdf(x) / x * (1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2))
}

/// Density of a general normal distribution with the given `mean` and
/// standard deviation `std_dev`.
///
/// # Panics
///
/// Panics if `std_dev <= 0`.
pub fn pdf_general(x: f64, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev > 0.0, "standard deviation must be positive");
    pdf((x - mean) / std_dev) / std_dev
}

/// CDF of a general normal distribution.
///
/// # Panics
///
/// Panics if `std_dev <= 0`.
pub fn cdf_general(x: f64, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev > 0.0, "standard deviation must be positive");
    cdf((x - mean) / std_dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_symmetry_and_peak() {
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-16);
        assert!(pdf(0.0) > pdf(0.1));
        assert!((log_pdf(2.0) - pdf(2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn cdf_known_values() {
        // Correctly-rounded references (computed as 0.5·erfc(-x/√2) with a
        // ~1 ulp libm erfc).
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (-1.0, 0.15865525393145707),
            (2.0, 0.9772498680518208),
            (3.0, 0.9986501019683699),
            (-3.0, 0.0013498980316300957),
        ];
        for (x, expected) in cases {
            assert!(
                (cdf(x) - expected).abs() < 5e-15,
                "cdf({x}) = {} expected {expected}",
                cdf(x)
            );
        }
    }

    #[test]
    fn erfc_matches_golden_values_to_machine_precision() {
        // (x, erfc(x)) references from a ~1 ulp libm erfc. Relative — not
        // absolute — accuracy is what the far tail needs: erfc(8) ≈ 1.1e-29
        // must still carry ~15 correct digits.
        let cases = [
            (0.25, 0.7236736098317631),
            (1.0, 0.15729920705028513),
            (1.25, 0.07709987174354177),
            (1.5, 0.033894853524689274),
            (2.0, 0.004677734981047265),
            (3.0, 2.2090496998585438e-5),
            (4.0, 1.541725790028002e-8),
            (5.0, 1.5374597944280351e-12),
            (6.0, 2.1519736712498916e-17),
            (7.0, 4.183825607779414e-23),
            (8.0, 1.1224297172982928e-29),
            (10.0, 2.088487583762545e-45),
        ];
        for (x, expected) in cases {
            let rel = (erfc(x) - expected).abs() / expected;
            assert!(
                rel < 5e-15,
                "erfc({x}) = {:e}, expected {expected:e}, rel {rel:e}",
                erfc(x)
            );
        }
    }

    #[test]
    fn upper_tail_matches_known_sigma_probabilities() {
        // (sigma, upper tail probability) reference pairs, including the
        // 6σ–8σ regime the array-capacity targets live in.
        let cases = [
            (3.0, 1.3498980316300957e-3),
            (4.0, 3.1671241833119965e-5),
            (4.5, 3.3976731247300615e-6),
            (5.0, 2.866515718791946e-7),
            (6.0, 9.865876450377012e-10),
            (6.5, 4.016000583859125e-11),
            (7.0, 1.279812543885835e-12),
            (7.5, 3.19089167291092e-14),
            (8.0, 6.220960574271819e-16),
        ];
        for (sigma, expected) in cases {
            let q = upper_tail_probability(sigma);
            let rel = (q - expected).abs() / expected;
            assert!(
                rel < 1e-13,
                "Q({sigma}) = {q:e}, expected {expected:e}, rel {rel:e}"
            );
        }
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for &x in &[-6.0, -4.0, -2.0, -0.5, 0.0, 0.5, 2.0, 4.0, 6.0] {
            let p = cdf(x);
            // For x ≫ 0, p = 1 − Q(x) is pinned against 1.0 and the tail
            // information beyond eps(1)/φ(x) is unrepresentable in the f64
            // `p` itself — no quantile can round-trip tighter than that. (The
            // far tail is what `sigma_level` is for: the *upper-tail*
            // probability carries full relative precision at any sigma.)
            let representation_limit = f64::EPSILON * p.max(1.0 - p) / pdf(x);
            let tolerance = 1e-13 + 4.0 * representation_limit;
            assert!(
                (quantile(p) - x).abs() < tolerance,
                "round trip failed at {x}: err {:e}",
                (quantile(p) - x).abs()
            );
        }
    }

    #[test]
    fn sigma_level_round_trips_tail_probability() {
        for &s in &[0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0] {
            let p = upper_tail_probability(s);
            assert!(
                (sigma_level(p) - s).abs() < 1e-11,
                "sigma round trip failed at {s}: {}",
                sigma_level(p)
            );
        }
    }

    #[test]
    fn asymptotic_tail_agrees_at_large_sigma() {
        for &s in &[6.0, 7.0, 8.0] {
            let exact = upper_tail_probability(s);
            let approx = upper_tail_asymptotic(s);
            let rel = (exact - approx).abs() / exact;
            assert!(rel < 0.05, "asymptotic mismatch at {s}: rel {rel}");
        }
    }

    #[test]
    fn general_normal_reduces_to_standard() {
        assert!((pdf_general(1.0, 0.0, 1.0) - pdf(1.0)).abs() < 1e-15);
        assert!((cdf_general(1.0, 0.0, 1.0) - cdf(1.0)).abs() < 1e-15);
        // Shifted/scaled.
        assert!((cdf_general(3.0, 1.0, 2.0) - cdf(1.0)).abs() < 1e-15);
    }

    #[test]
    fn erfc_limits() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-15);
        assert!(erfc(10.0) > 0.0);
        assert!(erfc(10.0) < 1e-40);
        assert!((erfc(-10.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0, 1)")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "standard deviation must be positive")]
    fn pdf_general_rejects_bad_sigma() {
        let _ = pdf_general(0.0, 0.0, 0.0);
    }

    #[test]
    fn monotonicity_of_cdf() {
        let mut prev = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let c = cdf(x);
            assert!(c >= prev, "cdf not monotone at {x}");
            prev = c;
            x += 0.05;
        }
    }
}
