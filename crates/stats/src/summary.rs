//! Streaming and weighted summary statistics.
//!
//! Failure-probability estimators accumulate millions of indicator evaluations;
//! [`OnlineStats`] keeps mean and variance in a numerically stable, single-pass
//! (Welford) form. Self-normalized importance sampling needs the weighted
//! counterpart, [`WeightedStats`], along with the effective sample size that
//! diagnoses weight degeneracy.

use serde::{Deserialize, Serialize};

/// Streaming (Welford) accumulator of count, mean and variance.
///
/// ```
/// use gis_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    /// gis-analyze: no_alloc
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel-friendly).
    /// gis-analyze: no_alloc
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator); 0 when fewer than two
    /// observations have been seen.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// confidence level (e.g. 0.95).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        let z = crate::normal::quantile(0.5 + level / 2.0);
        let half = z * self.standard_error();
        ConfidenceInterval {
            lower: self.mean - half,
            upper: self.mean + half,
            level,
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Half-width relative to the centre of the interval; `inf` when the centre
    /// is zero. This is the "relative error" stopping criterion used throughout
    /// the high-sigma literature (stop when the 90% CI is within ±10%).
    pub fn relative_half_width(&self) -> f64 {
        let centre = 0.5 * (self.lower + self.upper);
        // gis-analyze: allow(float-eq, division guard against an exactly-zero interval centre)
        if centre == 0.0 {
            f64::INFINITY
        } else {
            0.5 * self.width() / centre.abs()
        }
    }

    /// Returns `true` if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Weighted streaming statistics for self-normalized importance sampling.
///
/// Accumulates `Σw`, `Σw²`, `Σw·h` and `Σw·h²` so that the self-normalized
/// estimate, its delta-method variance and the effective sample size can all be
/// reported without storing samples.
///
/// ```
/// use gis_stats::WeightedStats;
/// let mut s = WeightedStats::new();
/// s.push(1.0, 2.0);
/// s.push(3.0, 4.0);
/// assert!((s.weighted_mean() - 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedStats {
    count: u64,
    sum_w: f64,
    sum_w_sq: f64,
    sum_wh: f64,
    sum_wh_sq: f64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedStats::default()
    }

    /// Adds one observation `h` with weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    /// gis-analyze: no_alloc
    pub fn push(&mut self, weight: f64, value: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "importance weights must be non-negative and finite, got {weight}"
        );
        self.count += 1;
        self.sum_w += weight; // gis-analyze: allow(naive-accum, asserted non-negative weights: no cancellation in the sum)
        self.sum_w_sq += weight * weight; // gis-analyze: allow(naive-accum, non-negative squared weights: no cancellation possible)
        self.sum_wh += weight * value; // gis-analyze: allow(naive-accum, delta-method moment; terms bounded by the asserted-finite weight)
        self.sum_wh_sq += (weight * value) * (weight * value); // gis-analyze: allow(naive-accum, non-negative squared terms: no cancellation possible)
    }

    /// Merges another accumulator into this one.
    /// gis-analyze: no_alloc
    pub fn merge(&mut self, other: &WeightedStats) {
        self.count += other.count;
        self.sum_w += other.sum_w; // gis-analyze: allow(naive-accum, merge of non-negative partial sums in deterministic lane order)
        self.sum_w_sq += other.sum_w_sq; // gis-analyze: allow(naive-accum, merge of non-negative partial sums in deterministic lane order)
        self.sum_wh += other.sum_wh; // gis-analyze: allow(naive-accum, merge of partial moments in deterministic lane order)
        self.sum_wh_sq += other.sum_wh_sq; // gis-analyze: allow(naive-accum, merge of non-negative partial sums in deterministic lane order)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of weights.
    pub fn sum_weights(&self) -> f64 {
        self.sum_w
    }

    /// Unnormalized importance-sampling mean `Σ(w·h)/N`. This is the unbiased
    /// estimator when the weights are exact density ratios.
    pub fn unnormalized_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_wh / self.count as f64
        }
    }

    /// Variance of the unnormalized estimator of the mean, estimated from the
    /// sample: `Var[Σ(w·h)/N] = (E[(w·h)²] − E[w·h]²) / (N − 1)`.
    pub fn unnormalized_variance_of_mean(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum_wh / n;
        let second_moment = self.sum_wh_sq / n;
        ((second_moment - mean * mean).max(0.0)) / (n - 1.0)
    }

    /// Self-normalized importance-sampling mean `Σ(w·h)/Σw`.
    pub fn weighted_mean(&self) -> f64 {
        // gis-analyze: allow(float-eq, division guard: the weight sum is exactly 0.0 only when empty)
        if self.sum_w == 0.0 {
            0.0
        } else {
            self.sum_wh / self.sum_w
        }
    }

    /// Kish effective sample size `(Σw)² / Σw²`; `0` when empty.
    pub fn effective_sample_size(&self) -> f64 {
        // gis-analyze: allow(float-eq, division guard: exact 0.0 only before any push)
        if self.sum_w_sq == 0.0 {
            0.0
        } else {
            self.sum_w * self.sum_w / self.sum_w_sq
        }
    }

    /// Fraction of nominal sample size retained, `ESS / N`.
    pub fn efficiency(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.effective_sample_size() / self.count as f64
        }
    }
}

/// Cumulative distribution function of the binomial distribution:
/// `P(X ≤ k)` for `X ~ Binomial(n, p)`.
///
/// The probability mass is accumulated iteratively in log space (term-ratio
/// recurrence), so the function stays accurate for the `n` in the hundreds
/// used by replication studies and does not underflow for small `p`.
///
/// ```
/// use gis_stats::summary::binomial_cdf;
/// // Fair coin, 4 tosses: P(X ≤ 1) = (1 + 4) / 16.
/// assert!((binomial_cdf(1, 4, 0.5) - 5.0 / 16.0).abs() < 1e-12);
/// assert_eq!(binomial_cdf(4, 4, 0.5), 1.0);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `n == 0`.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    assert!(n > 0, "binomial_cdf needs at least one trial");
    if k >= n {
        return 1.0;
    }
    // gis-analyze: allow(float-eq, exact boundary p = 0: every trial fails, CDF is 1)
    if p == 0.0 {
        return 1.0;
    }
    // gis-analyze: allow(float-eq, exact boundary p = 1: all trials succeed, CDF is 0)
    if p == 1.0 {
        return 0.0; // k < n and all trials succeed.
    }
    // ln P(X = 0) = n·ln(1−p); ln ratio of consecutive terms:
    // P(i+1)/P(i) = (n−i)/(i+1) · p/(1−p).
    let ln_odds = p.ln() - (-p).ln_1p();
    let mut ln_term = n as f64 * (-p).ln_1p();
    let mut cdf = ln_term.exp();
    for i in 0..k {
        ln_term += ((n - i) as f64).ln() - ((i + 1) as f64).ln() + ln_odds;
        cdf += ln_term.exp();
    }
    cdf.min(1.0)
}

/// Central binomial acceptance band `[k_lo, k_hi]` for the number of successes
/// in `n` trials at success probability `p`: the tightest count interval with
/// `P(X < k_lo) ≤ alpha/2` and `P(X > k_hi) ≤ alpha/2`, so
/// `P(k_lo ≤ X ≤ k_hi) ≥ 1 − alpha`.
///
/// This is the acceptance test for *empirical coverage*: if a method's
/// confidence intervals are honest at nominal level `p`, the number of
/// replications whose interval covers the truth falls inside this band except
/// with probability `alpha`.
///
/// ```
/// use gis_stats::summary::binomial_acceptance_band;
/// let (lo, hi) = binomial_acceptance_band(100, 0.9, 0.002);
/// assert!(lo >= 78 && lo <= 85);
/// assert!(hi >= 96 && hi <= 100);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, `p` is outside `(0, 1)` or `alpha` is outside `(0, 1)`.
pub fn binomial_acceptance_band(n: u64, p: f64, alpha: f64) -> (u64, u64) {
    assert!(n > 0, "acceptance band needs at least one trial");
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let half = alpha / 2.0;
    // Smallest k with P(X ≤ k) > alpha/2 ⇒ P(X < k) ≤ alpha/2.
    let mut k_lo = 0;
    while k_lo < n && binomial_cdf(k_lo, n, p) <= half {
        k_lo += 1;
    }
    // Largest k with P(X ≥ k) > alpha/2, i.e. 1 − P(X ≤ k−1) > alpha/2.
    let mut k_hi = n;
    while k_hi > 0 && 1.0 - binomial_cdf(k_hi - 1, n, p) <= half {
        k_hi -= 1;
    }
    (k_lo, k_hi)
}

/// Pearson's chi-square goodness-of-fit statistic
/// `Σ (observed − expected)² / expected` over the bins.
///
/// Pair with a chi-square survival function at `bins − 1` degrees of freedom
/// (e.g. `gis_core::special::chi_square_survival`) for a p-value; used by the
/// RNG substream-independence tests.
///
/// ```
/// use gis_stats::summary::chi_square_statistic;
/// // Perfect agreement gives a zero statistic.
/// assert_eq!(chi_square_statistic(&[10, 10], &[10.0, 10.0]), 0.0);
/// ```
///
/// # Panics
///
/// Panics if the slices are empty, have different lengths, or any expected
/// count is not strictly positive.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert!(!observed.is_empty(), "chi-square needs at least one bin");
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected bin counts differ in length"
    );
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be strictly positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Pearson correlation coefficient of two equally long samples; `0` when
/// either sample has zero variance.
///
/// ```
/// use gis_stats::summary::pearson_correlation;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices are empty or have different lengths.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "correlation of empty samples");
    assert_eq!(xs.len(), ys.len(), "samples differ in length");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    // gis-analyze: allow(float-eq, division guard: zero variance leaves correlation undefined)
    if var_x == 0.0 || var_y == 0.0 {
        0.0
    } else {
        cov / (var_x * var_y).sqrt()
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a slice by sorting a copy
/// (linear interpolation between order statistics).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[allow(clippy::expect_used)] // invariants stated in the expect messages
pub fn quantile_of(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize; // gis-analyze: allow(float-cast, quantile bracketing: floor of an in-range rank position)
    let hi = pos.ceil() as usize; // gis-analyze: allow(float-cast, quantile bracketing: ceil of an in-range rank position)
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let stats: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.sample_variance() - var).abs() < 1e-12);
        assert_eq!(stats.min(), 1.5);
        assert_eq!(stats.max(), 4.75);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a: OnlineStats = a_data.iter().copied().collect();
        let b: OnlineStats = b_data.iter().copied().collect();
        a.merge(&b);
        let all: OnlineStats = a_data.iter().chain(b_data.iter()).copied().collect();
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(a.count(), 7);

        // Merging into/with empty accumulators.
        let mut empty = OnlineStats::new();
        empty.merge(&all);
        assert_eq!(empty.count(), all.count());
        let mut full = all;
        full.merge(&OnlineStats::new());
        assert_eq!(full.count(), all.count());
    }

    #[test]
    fn confidence_interval_behaviour() {
        let stats: OnlineStats = (0..10_000).map(|i| (i % 2) as f64).collect();
        let ci = stats.confidence_interval(0.95);
        assert!(ci.contains(0.5));
        assert!(ci.width() < 0.03);
        assert!(ci.relative_half_width() < 0.03);
        assert!(ci.level == 0.95);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
        let ci = s.confidence_interval(0.9);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn weighted_mean_and_ess() {
        let mut s = WeightedStats::new();
        s.push(1.0, 10.0);
        s.push(1.0, 20.0);
        assert!((s.weighted_mean() - 15.0).abs() < 1e-12);
        // Equal weights: ESS equals N.
        assert!((s.effective_sample_size() - 2.0).abs() < 1e-12);
        assert!((s.efficiency() - 1.0).abs() < 1e-12);

        // One dominant weight collapses the ESS towards 1.
        let mut t = WeightedStats::new();
        t.push(1000.0, 1.0);
        t.push(0.001, 0.0);
        assert!(t.effective_sample_size() < 1.1);
    }

    #[test]
    fn unnormalized_mean_for_indicator() {
        // Importance sampling of an indicator: values are 0/1, weights are
        // density ratios. Unnormalized mean = Σ w·1 / N.
        let mut s = WeightedStats::new();
        s.push(0.5, 1.0);
        s.push(0.25, 0.0);
        s.push(0.125, 1.0);
        s.push(2.0, 0.0);
        assert!((s.unnormalized_mean() - (0.5 + 0.125) / 4.0).abs() < 1e-12);
        assert!(s.unnormalized_variance_of_mean() >= 0.0);
        assert_eq!(s.count(), 4);
        assert!((s.sum_weights() - 2.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "importance weights must be non-negative")]
    fn negative_weight_rejected() {
        WeightedStats::new().push(-1.0, 0.0);
    }

    #[test]
    fn weighted_merge() {
        let mut a = WeightedStats::new();
        a.push(1.0, 1.0);
        let mut b = WeightedStats::new();
        b.push(3.0, 0.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.weighted_mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_of(&data, 0.0), 1.0);
        assert_eq!(quantile_of(&data, 1.0), 5.0);
        assert_eq!(quantile_of(&data, 0.5), 3.0);
        assert!((quantile_of(&data, 0.25) - 2.0).abs() < 1e-12);
        // Unsorted input is fine.
        let shuffled = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile_of(&shuffled, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty slice")]
    fn quantile_empty_panics() {
        let _ = quantile_of(&[], 0.5);
    }

    /// Direct-summation reference for the binomial CDF (exact for small n).
    fn binomial_cdf_reference(k: u64, n: u64, p: f64) -> f64 {
        let mut cdf = 0.0;
        for i in 0..=k.min(n) {
            let mut ln_coeff = 0.0;
            for j in 0..i {
                ln_coeff += ((n - j) as f64).ln() - ((j + 1) as f64).ln();
            }
            cdf += (ln_coeff + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp();
        }
        cdf
    }

    #[test]
    fn binomial_cdf_matches_reference_and_edge_cases() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.9), (100, 0.5), (400, 0.95)] {
            for k in [0, n / 4, n / 2, n - 1, n] {
                let got = binomial_cdf(k, n, p);
                let want = binomial_cdf_reference(k, n, p);
                assert!(
                    (got - want).abs() < 1e-10,
                    "CDF({k}; {n}, {p}) = {got} vs {want}"
                );
            }
        }
        // Monotone in k, exact endpoints.
        let mut prev = 0.0;
        for k in 0..=50 {
            let c = binomial_cdf(k, 50, 0.7);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(binomial_cdf(50, 50, 0.7), 1.0);
        assert_eq!(binomial_cdf(0, 5, 0.0), 1.0);
        assert_eq!(binomial_cdf(4, 5, 1.0), 0.0);
    }

    #[test]
    fn acceptance_band_has_guaranteed_coverage() {
        for &(n, p, alpha) in &[
            (100u64, 0.9, 0.002),
            (100, 0.9, 0.05),
            (250, 0.95, 0.001),
            (60, 0.5, 0.01),
        ] {
            let (lo, hi) = binomial_acceptance_band(n, p, alpha);
            assert!(lo <= hi, "band inverted for n={n}, p={p}");
            // P(X < lo) ≤ alpha/2 and P(X > hi) ≤ alpha/2.
            if lo > 0 {
                assert!(binomial_cdf(lo - 1, n, p) <= alpha / 2.0 + 1e-12);
            }
            assert!(1.0 - binomial_cdf(hi, n, p) <= alpha / 2.0 + 1e-12);
            // Total coverage of the band is at least 1 − alpha.
            let inside = binomial_cdf(hi, n, p)
                - if lo > 0 {
                    binomial_cdf(lo - 1, n, p)
                } else {
                    0.0
                };
            assert!(inside >= 1.0 - alpha - 1e-12);
            // The band brackets the mean.
            let mean = n as f64 * p;
            assert!((lo as f64) <= mean && mean <= hi as f64);
        }
        // A tighter alpha can only widen the band.
        let (lo_wide, hi_wide) = binomial_acceptance_band(100, 0.9, 0.001);
        let (lo_narrow, hi_narrow) = binomial_acceptance_band(100, 0.9, 0.1);
        assert!(lo_wide <= lo_narrow && hi_wide >= hi_narrow);
    }

    #[test]
    fn chi_square_statistic_detects_misfit() {
        // Uniform observed counts against a uniform expectation: statistic 0.
        assert_eq!(chi_square_statistic(&[25, 25, 25, 25], &[25.0; 4]), 0.0);
        // A skewed observation produces the textbook value.
        let stat = chi_square_statistic(&[30, 20], &[25.0, 25.0]);
        assert!((stat - 2.0).abs() < 1e-12);
        // More skew, larger statistic.
        assert!(chi_square_statistic(&[45, 5], &[25.0, 25.0]) > stat);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn chi_square_rejects_zero_expected() {
        let _ = chi_square_statistic(&[1, 2], &[0.0, 3.0]);
    }

    #[test]
    fn pearson_correlation_behaviour() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x + 5.0).collect();
        assert!((pearson_correlation(&xs, &neg) + 1.0).abs() < 1e-12);
        // Constant sample has zero variance → correlation defined as 0.
        assert_eq!(pearson_correlation(&xs, &vec![1.0; 100]), 0.0);
        // Independent-ish alternating pattern correlates weakly.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(pearson_correlation(&xs, &alt).abs() < 0.1);
    }
}
