//! Streaming and weighted summary statistics.
//!
//! Failure-probability estimators accumulate millions of indicator evaluations;
//! [`OnlineStats`] keeps mean and variance in a numerically stable, single-pass
//! (Welford) form. Self-normalized importance sampling needs the weighted
//! counterpart, [`WeightedStats`], along with the effective sample size that
//! diagnoses weight degeneracy.

use serde::{Deserialize, Serialize};

/// Streaming (Welford) accumulator of count, mean and variance.
///
/// ```
/// use gis_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator); 0 when fewer than two
    /// observations have been seen.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// confidence level (e.g. 0.95).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        let z = crate::normal::quantile(0.5 + level / 2.0);
        let half = z * self.standard_error();
        ConfidenceInterval {
            lower: self.mean - half,
            upper: self.mean + half,
            level,
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Half-width relative to the centre of the interval; `inf` when the centre
    /// is zero. This is the "relative error" stopping criterion used throughout
    /// the high-sigma literature (stop when the 90% CI is within ±10%).
    pub fn relative_half_width(&self) -> f64 {
        let centre = 0.5 * (self.lower + self.upper);
        if centre == 0.0 {
            f64::INFINITY
        } else {
            0.5 * self.width() / centre.abs()
        }
    }

    /// Returns `true` if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Weighted streaming statistics for self-normalized importance sampling.
///
/// Accumulates `Σw`, `Σw²`, `Σw·h` and `Σw·h²` so that the self-normalized
/// estimate, its delta-method variance and the effective sample size can all be
/// reported without storing samples.
///
/// ```
/// use gis_stats::WeightedStats;
/// let mut s = WeightedStats::new();
/// s.push(1.0, 2.0);
/// s.push(3.0, 4.0);
/// assert!((s.weighted_mean() - 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedStats {
    count: u64,
    sum_w: f64,
    sum_w_sq: f64,
    sum_wh: f64,
    sum_wh_sq: f64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedStats::default()
    }

    /// Adds one observation `h` with weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    pub fn push(&mut self, weight: f64, value: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "importance weights must be non-negative and finite, got {weight}"
        );
        self.count += 1;
        self.sum_w += weight;
        self.sum_w_sq += weight * weight;
        self.sum_wh += weight * value;
        self.sum_wh_sq += (weight * value) * (weight * value);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &WeightedStats) {
        self.count += other.count;
        self.sum_w += other.sum_w;
        self.sum_w_sq += other.sum_w_sq;
        self.sum_wh += other.sum_wh;
        self.sum_wh_sq += other.sum_wh_sq;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of weights.
    pub fn sum_weights(&self) -> f64 {
        self.sum_w
    }

    /// Unnormalized importance-sampling mean `Σ(w·h)/N`. This is the unbiased
    /// estimator when the weights are exact density ratios.
    pub fn unnormalized_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_wh / self.count as f64
        }
    }

    /// Variance of the unnormalized estimator of the mean, estimated from the
    /// sample: `Var[Σ(w·h)/N] = (E[(w·h)²] − E[w·h]²) / (N − 1)`.
    pub fn unnormalized_variance_of_mean(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum_wh / n;
        let second_moment = self.sum_wh_sq / n;
        ((second_moment - mean * mean).max(0.0)) / (n - 1.0)
    }

    /// Self-normalized importance-sampling mean `Σ(w·h)/Σw`.
    pub fn weighted_mean(&self) -> f64 {
        if self.sum_w == 0.0 {
            0.0
        } else {
            self.sum_wh / self.sum_w
        }
    }

    /// Kish effective sample size `(Σw)² / Σw²`; `0` when empty.
    pub fn effective_sample_size(&self) -> f64 {
        if self.sum_w_sq == 0.0 {
            0.0
        } else {
            self.sum_w * self.sum_w / self.sum_w_sq
        }
    }

    /// Fraction of nominal sample size retained, `ESS / N`.
    pub fn efficiency(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.effective_sample_size() / self.count as f64
        }
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a slice by sorting a copy
/// (linear interpolation between order statistics).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile_of(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let stats: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.sample_variance() - var).abs() < 1e-12);
        assert_eq!(stats.min(), 1.5);
        assert_eq!(stats.max(), 4.75);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a: OnlineStats = a_data.iter().copied().collect();
        let b: OnlineStats = b_data.iter().copied().collect();
        a.merge(&b);
        let all: OnlineStats = a_data.iter().chain(b_data.iter()).copied().collect();
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(a.count(), 7);

        // Merging into/with empty accumulators.
        let mut empty = OnlineStats::new();
        empty.merge(&all);
        assert_eq!(empty.count(), all.count());
        let mut full = all.clone();
        full.merge(&OnlineStats::new());
        assert_eq!(full.count(), all.count());
    }

    #[test]
    fn confidence_interval_behaviour() {
        let stats: OnlineStats = (0..10_000).map(|i| (i % 2) as f64).collect();
        let ci = stats.confidence_interval(0.95);
        assert!(ci.contains(0.5));
        assert!(ci.width() < 0.03);
        assert!(ci.relative_half_width() < 0.03);
        assert!(ci.level == 0.95);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
        let ci = s.confidence_interval(0.9);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn weighted_mean_and_ess() {
        let mut s = WeightedStats::new();
        s.push(1.0, 10.0);
        s.push(1.0, 20.0);
        assert!((s.weighted_mean() - 15.0).abs() < 1e-12);
        // Equal weights: ESS equals N.
        assert!((s.effective_sample_size() - 2.0).abs() < 1e-12);
        assert!((s.efficiency() - 1.0).abs() < 1e-12);

        // One dominant weight collapses the ESS towards 1.
        let mut t = WeightedStats::new();
        t.push(1000.0, 1.0);
        t.push(0.001, 0.0);
        assert!(t.effective_sample_size() < 1.1);
    }

    #[test]
    fn unnormalized_mean_for_indicator() {
        // Importance sampling of an indicator: values are 0/1, weights are
        // density ratios. Unnormalized mean = Σ w·1 / N.
        let mut s = WeightedStats::new();
        s.push(0.5, 1.0);
        s.push(0.25, 0.0);
        s.push(0.125, 1.0);
        s.push(2.0, 0.0);
        assert!((s.unnormalized_mean() - (0.5 + 0.125) / 4.0).abs() < 1e-12);
        assert!(s.unnormalized_variance_of_mean() >= 0.0);
        assert_eq!(s.count(), 4);
        assert!((s.sum_weights() - 2.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "importance weights must be non-negative")]
    fn negative_weight_rejected() {
        WeightedStats::new().push(-1.0, 0.0);
    }

    #[test]
    fn weighted_merge() {
        let mut a = WeightedStats::new();
        a.push(1.0, 1.0);
        let mut b = WeightedStats::new();
        b.push(3.0, 0.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.weighted_mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_of(&data, 0.0), 1.0);
        assert_eq!(quantile_of(&data, 1.0), 5.0);
        assert_eq!(quantile_of(&data, 0.5), 3.0);
        assert!((quantile_of(&data, 0.25) - 2.0).abs() < 1e-12);
        // Unsorted input is fine.
        let shuffled = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile_of(&shuffled, 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty slice")]
    fn quantile_empty_panics() {
        let _ = quantile_of(&[], 0.5);
    }
}
