//! Fixed-bin histograms for metric distributions (Figure 3 of the evaluation).

use serde::{Deserialize, Serialize};

/// A histogram with uniform bins over `[low, high)`.
///
/// Values outside the range are counted in underflow/overflow buckets so that
/// no sample is silently dropped — important when plotting heavy metric tails.
///
/// ```
/// use gis_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [1.0, 2.5, 2.6, 7.0, 11.0] {
///     h.add(x);
/// }
/// assert_eq!(h.total_count(), 5);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.counts()[1], 2); // bin [2,4)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[low, high)`.
    ///
    /// Returns `None` if `bins == 0`, `low >= high`, or either bound is not
    /// finite.
    pub fn new(low: f64, high: f64, bins: usize) -> Option<Self> {
        if bins == 0 || low >= high || !low.is_finite() || !high.is_finite() {
            return None;
        }
        Some(Histogram {
            low,
            high,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Builds a histogram spanning the range of `values` with the given number
    /// of bins. Returns `None` for empty input, zero bins or degenerate range.
    pub fn from_values(values: &[f64], bins: usize) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let low = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let high = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Widen slightly so the maximum falls inside the last bin.
        let span = (high - low).max(f64::MIN_POSITIVE);
        let mut h = Histogram::new(low, high + span * 1e-9, bins)?;
        for &v in values {
            h.add(v);
        }
        Some(h)
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        if value.is_nan() {
            // NaNs count as overflow so they remain visible in totals.
            self.overflow += 1;
            return;
        }
        if value < self.low {
            self.underflow += 1;
        } else if value >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.counts.len() as f64;
            let idx = ((value - self.low) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the upper bound (including NaNs).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of values added (including under/overflow).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.high - self.low) / self.counts.len() as f64;
        self.low + width * (i as f64 + 0.5)
    }

    /// Probability density estimate for bin `i` (count / (total · width)).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_bins()`.
    pub fn density(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let total = self.total_count();
        if total == 0 {
            return 0.0;
        }
        let width = (self.high - self.low) / self.counts.len() as f64;
        self.counts[i] as f64 / (total as f64 * width)
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_center(i), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 4).is_some());
    }

    #[test]
    fn binning_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(-1.0);
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total_count(), 5);
    }

    #[test]
    fn bin_centers_and_density() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
        for _ in 0..4 {
            h.add(1.5);
        }
        // All mass in bin 1 with width 1 → density 1.0.
        assert!((h.density(1) - 1.0).abs() < 1e-12);
        assert_eq!(h.density(0), 0.0);
    }

    #[test]
    fn from_values_covers_all_points() {
        let values = [3.0, 1.0, 2.0, 5.0, 4.0];
        let h = Histogram::from_values(&values, 4).unwrap();
        assert_eq!(h.total_count(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(Histogram::from_values(&[], 4).is_none());
    }

    #[test]
    fn iter_yields_every_bin() {
        let h = Histogram::new(0.0, 1.0, 8).unwrap();
        assert_eq!(h.iter().count(), 8);
    }
}
