//! Probability distributions, random streams, sampling plans and summary
//! statistics for high-sigma statistical extraction.
//!
//! The estimators in `gis-core` operate in a *whitened* variation space where
//! every process parameter is an independent standard normal. This crate
//! supplies everything that layer needs:
//!
//! * accurate standard-normal `Φ`, `Φ⁻¹` and density functions (the tail
//!   accuracy of `Φ⁻¹` directly controls how well failure probabilities map to
//!   equivalent sigma levels),
//! * multivariate normal proposal distributions with arbitrary mean shift and
//!   covariance (for importance sampling),
//! * reproducible, splittable random streams,
//! * space-filling sampling plans (Latin hypercube, uniform-on-sphere shells)
//!   used by the spherical-presampling baseline, and
//! * streaming summary statistics (Welford), weighted statistics for
//!   self-normalized importance sampling, histograms and confidence intervals.
//!
//! # Example
//!
//! ```
//! use gis_stats::{normal, RngStream};
//!
//! // 3-sigma upper-tail probability, and back.
//! let p = normal::upper_tail_probability(3.0);
//! assert!((normal::sigma_level(p) - 3.0).abs() < 1e-9);
//!
//! // Reproducible random stream.
//! let mut stream = RngStream::from_seed(42);
//! let z = stream.standard_normal();
//! assert!(z.is_finite());
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod histogram;
pub mod mvn;
pub mod normal;
pub mod rng;
pub mod sampling;
pub mod summary;

pub use histogram::Histogram;
pub use mvn::{GaussianMixture, MultivariateNormal};
pub use rng::RngStream;
pub use sampling::{halton_sequence, latin_hypercube, uniform_on_sphere};
pub use summary::{
    binomial_acceptance_band, binomial_cdf, chi_square_statistic, pearson_correlation, quantile_of,
    ConfidenceInterval, OnlineStats, WeightedStats,
};

/// Error type for statistics routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A linear algebra operation failed (e.g. a covariance matrix that is not
    /// positive definite).
    Linalg(gis_linalg::LinalgError),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StatsError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatsError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gis_linalg::LinalgError> for StatsError {
    fn from(e: gis_linalg::LinalgError) -> Self {
        StatsError::Linalg(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = StatsError::InvalidArgument("nope".into());
        assert!(e.to_string().contains("nope"));
        let le = gis_linalg::LinalgError::NotSquare { rows: 1, cols: 2 };
        let e: StatsError = le.into();
        assert!(e.to_string().contains("linear algebra"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
