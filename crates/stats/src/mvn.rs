//! Multivariate normal distributions used as importance-sampling proposals.
//!
//! The key operations are drawing samples (`x = μ + L z` with `L` the Cholesky
//! factor of the covariance) and evaluating log-densities, which together give
//! the importance weights `w(x) = f(x) / q(x)`.

use crate::{Result, RngStream, StatsError};
use gis_linalg::{Cholesky, Matrix, Vector};

/// A multivariate normal distribution `N(μ, Σ)`.
///
/// # Examples
///
/// ```
/// use gis_stats::{MultivariateNormal, RngStream};
/// use gis_linalg::Vector;
///
/// # fn main() -> Result<(), gis_stats::StatsError> {
/// let dist = MultivariateNormal::standard(3);
/// let mut rng = RngStream::from_seed(1);
/// let x = dist.sample(&mut rng);
/// assert_eq!(x.len(), 3);
/// // The standard normal density at the origin is (2π)^{-3/2}.
/// let log_p0 = dist.log_pdf(&Vector::zeros(3))?;
/// assert!((log_p0 - (-1.5 * (2.0 * std::f64::consts::PI).ln())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vector,
    chol: Cholesky,
    log_norm_constant: f64,
}

impl MultivariateNormal {
    /// Creates a distribution with the given mean and covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if the dimensions of `mean` and
    /// `covariance` do not agree, or [`StatsError::Linalg`] if the covariance is
    /// not symmetric positive definite.
    pub fn new(mean: Vector, covariance: &Matrix) -> Result<Self> {
        if covariance.rows() != mean.len() || covariance.cols() != mean.len() {
            return Err(StatsError::InvalidArgument(format!(
                "covariance is {}x{} but mean has length {}",
                covariance.rows(),
                covariance.cols(),
                mean.len()
            )));
        }
        let chol = Cholesky::new(covariance)?;
        let dim = mean.len() as f64;
        let log_norm_constant =
            -0.5 * (dim * (2.0 * std::f64::consts::PI).ln() + chol.log_determinant());
        Ok(MultivariateNormal {
            mean,
            chol,
            log_norm_constant,
        })
    }

    /// The standard normal `N(0, I)` in `dim` dimensions.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn standard(dim: usize) -> Self {
        MultivariateNormal::new(Vector::zeros(dim), &Matrix::identity(dim))
            .expect("identity covariance is always valid")
    }

    /// A mean-shifted standard normal `N(μ, I)` — the canonical mean-shift
    /// importance-sampling proposal.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn shifted_standard(mean: Vector) -> Self {
        let dim = mean.len();
        MultivariateNormal::new(mean, &Matrix::identity(dim))
            .expect("identity covariance is always valid")
    }

    /// An isotropic normal `N(μ, s²·I)` — used by scaled-sigma sampling.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn isotropic(mean: Vector, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let dim = mean.len();
        MultivariateNormal::new(mean, &Matrix::from_diagonal(&vec![scale * scale; dim]))
            .expect("positive isotropic covariance is always valid")
    }

    /// Dimensionality of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Draws one sample `x = μ + L z`.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn sample(&self, rng: &mut RngStream) -> Vector {
        let z = rng.standard_normal_vector(self.dim());
        let colored = self
            .chol
            .color(&z)
            .expect("dimension fixed at construction");
        &self.mean + &colored
    }

    /// Draws `n` independent samples.
    pub fn sample_n(&self, rng: &mut RngStream, n: usize) -> Vec<Vector> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Log-density `log N(x | μ, Σ)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Linalg`] if `x` has the wrong dimension.
    pub fn log_pdf(&self, x: &Vector) -> Result<f64> {
        if x.len() != self.dim() {
            return Err(StatsError::InvalidArgument(format!(
                "point has dimension {}, distribution has dimension {}",
                x.len(),
                self.dim()
            )));
        }
        let centered = x - &self.mean;
        let maha = self.chol.mahalanobis_squared(&centered)?;
        Ok(self.log_norm_constant - 0.5 * maha)
    }

    /// Density `N(x | μ, Σ)`.
    ///
    /// # Errors
    ///
    /// See [`MultivariateNormal::log_pdf`].
    pub fn pdf(&self, x: &Vector) -> Result<f64> {
        Ok(self.log_pdf(x)?.exp())
    }
}

/// A finite mixture of multivariate normals with fixed component weights.
///
/// Mixture proposals are the standard "defensive" importance-sampling device:
/// mixing the shifted proposal with the nominal density bounds the weights and
/// protects the estimator when the shift is imperfect.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    components: Vec<MultivariateNormal>,
    weights: Vec<f64>,
    log_weights: Vec<f64>,
}

impl GaussianMixture {
    /// Creates a mixture from components and (unnormalized, positive) weights.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if the lists are empty, have
    /// mismatched lengths, contain non-positive weights, or the components have
    /// differing dimensions.
    pub fn new(components: Vec<MultivariateNormal>, weights: Vec<f64>) -> Result<Self> {
        if components.is_empty() || components.len() != weights.len() {
            return Err(StatsError::InvalidArgument(
                "mixture needs equal, non-zero numbers of components and weights".to_string(),
            ));
        }
        let dim = components[0].dim();
        if components.iter().any(|c| c.dim() != dim) {
            return Err(StatsError::InvalidArgument(
                "all mixture components must have the same dimension".to_string(),
            ));
        }
        if weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
            return Err(StatsError::InvalidArgument(
                "mixture weights must be positive and finite".to_string(),
            ));
        }
        let total: f64 = weights.iter().sum();
        let weights: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        let log_weights = weights.iter().map(|w| w.ln()).collect();
        Ok(GaussianMixture {
            components,
            weights,
            log_weights,
        })
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Dimensionality of the mixture.
    pub fn dim(&self) -> usize {
        self.components[0].dim()
    }

    /// Normalized component weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Borrow the mixture components.
    pub fn components(&self) -> &[MultivariateNormal] {
        &self.components
    }

    /// Draws one sample: pick a component by weight, then sample from it.
    pub fn sample(&self, rng: &mut RngStream) -> Vector {
        let k = rng.weighted_index(&self.weights);
        self.components[k].sample(rng)
    }

    /// Log-density of the mixture, computed with the log-sum-exp trick.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from the component densities.
    pub fn log_pdf(&self, x: &Vector) -> Result<f64> {
        let mut terms = Vec::with_capacity(self.components.len());
        for (c, lw) in self.components.iter().zip(self.log_weights.iter()) {
            terms.push(lw + c.log_pdf(x)?);
        }
        let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // gis-analyze: allow(float-eq, all-terms-at--inf sentinel before the log-sum-exp shift)
        if max == f64::NEG_INFINITY {
            return Ok(f64::NEG_INFINITY);
        }
        let sum: f64 = terms.iter().map(|t| (t - max).exp()).sum();
        Ok(max + sum.ln())
    }

    /// Density of the mixture.
    ///
    /// # Errors
    ///
    /// See [`GaussianMixture::log_pdf`].
    pub fn pdf(&self, x: &Vector) -> Result<f64> {
        Ok(self.log_pdf(x)?.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal;

    #[test]
    fn standard_log_pdf_matches_univariate_product() {
        let dist = MultivariateNormal::standard(4);
        let x = Vector::from_slice(&[0.5, -1.0, 2.0, 0.0]);
        let expected: f64 = x.iter().map(|&xi| normal::log_pdf(xi)).sum();
        assert!((dist.log_pdf(&x).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn shifted_standard_peaks_at_mean() {
        let mean = Vector::from_slice(&[1.0, 2.0]);
        let dist = MultivariateNormal::shifted_standard(mean.clone());
        let at_mean = dist.log_pdf(&mean).unwrap();
        let away = dist.log_pdf(&Vector::zeros(2)).unwrap();
        assert!(at_mean > away);
    }

    #[test]
    fn isotropic_scales_density() {
        let dist = MultivariateNormal::isotropic(Vector::zeros(1), 2.0);
        // N(0 | 0, 4) = 1/(2*sqrt(2π))
        let expected = normal::pdf_general(0.0, 0.0, 2.0);
        assert!((dist.pdf(&Vector::zeros(1)).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_match_parameters() {
        let mean = Vector::from_slice(&[1.0, -2.0]);
        let cov = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        let dist = MultivariateNormal::new(mean.clone(), &cov).unwrap();
        let mut rng = RngStream::from_seed(31);
        let n = 50_000;
        let mut sum = Vector::zeros(2);
        let mut sum_sq = Vector::zeros(2);
        let mut cross = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            sum += &x;
            sum_sq[0] += x[0] * x[0];
            sum_sq[1] += x[1] * x[1];
            cross += x[0] * x[1];
        }
        let m0 = sum[0] / n as f64;
        let m1 = sum[1] / n as f64;
        assert!((m0 - 1.0).abs() < 0.05);
        assert!((m1 + 2.0).abs() < 0.05);
        let var0 = sum_sq[0] / n as f64 - m0 * m0;
        let var1 = sum_sq[1] / n as f64 - m1 * m1;
        let cov01 = cross / n as f64 - m0 * m1;
        assert!((var0 - 2.0).abs() < 0.1);
        assert!((var1 - 1.0).abs() < 0.05);
        assert!((cov01 - 0.5).abs() < 0.05);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        assert!(MultivariateNormal::new(Vector::zeros(2), &Matrix::identity(3)).is_err());
        let d = MultivariateNormal::standard(2);
        assert!(d.log_pdf(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn rejects_non_spd_covariance() {
        let cov = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            MultivariateNormal::new(Vector::zeros(2), &cov),
            Err(StatsError::Linalg(_))
        ));
    }

    #[test]
    fn mixture_log_pdf_matches_manual_sum() {
        let c1 = MultivariateNormal::standard(1);
        let c2 = MultivariateNormal::shifted_standard(Vector::from_slice(&[3.0]));
        let mix = GaussianMixture::new(vec![c1.clone(), c2.clone()], vec![0.25, 0.75]).unwrap();
        let x = Vector::from_slice(&[1.0]);
        let expected = 0.25 * c1.pdf(&x).unwrap() + 0.75 * c2.pdf(&x).unwrap();
        assert!((mix.pdf(&x).unwrap() - expected).abs() < 1e-14);
        assert_eq!(mix.num_components(), 2);
        assert_eq!(mix.dim(), 1);
        assert!((mix.weights()[0] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn mixture_sampling_respects_weights() {
        let c1 = MultivariateNormal::shifted_standard(Vector::from_slice(&[-10.0]));
        let c2 = MultivariateNormal::shifted_standard(Vector::from_slice(&[10.0]));
        let mix = GaussianMixture::new(vec![c1, c2], vec![1.0, 4.0]).unwrap();
        let mut rng = RngStream::from_seed(17);
        let n = 20_000;
        let right = (0..n).filter(|_| mix.sample(&mut rng)[0] > 0.0).count() as f64;
        assert!((right / n as f64 - 0.8).abs() < 0.02);
    }

    #[test]
    fn mixture_validation() {
        let c = MultivariateNormal::standard(1);
        assert!(GaussianMixture::new(vec![], vec![]).is_err());
        assert!(GaussianMixture::new(vec![c.clone()], vec![1.0, 2.0]).is_err());
        assert!(GaussianMixture::new(vec![c.clone()], vec![0.0]).is_err());
        let c2 = MultivariateNormal::standard(2);
        assert!(GaussianMixture::new(vec![c, c2], vec![1.0, 1.0]).is_err());
    }
}
