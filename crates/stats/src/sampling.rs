//! Space-filling and directional sampling plans.
//!
//! * **Latin hypercube sampling** is used to seed the minimum-norm search with
//!   well-spread starting points.
//! * **Uniform-on-sphere sampling** drives the spherical (shell) presampling
//!   baseline, which probes the failure region direction-by-direction.
//! * **Halton sequences** provide a cheap low-discrepancy alternative for
//!   deterministic sweeps in the benchmarks.

use crate::{normal, RngStream};
use gis_linalg::Vector;

/// Generates a Latin hypercube sample of `n` points in `dim` dimensions on the
/// unit cube `[0, 1)^dim`.
///
/// Each one-dimensional projection of the returned points hits every one of the
/// `n` equal-width strata exactly once.
///
/// # Panics
///
/// Panics if `n == 0` or `dim == 0`.
///
/// ```
/// use gis_stats::{latin_hypercube, RngStream};
/// let mut rng = RngStream::from_seed(3);
/// let pts = latin_hypercube(&mut rng, 8, 2);
/// assert_eq!(pts.len(), 8);
/// assert!(pts.iter().all(|p| p.len() == 2));
/// ```
pub fn latin_hypercube(rng: &mut RngStream, n: usize, dim: usize) -> Vec<Vector> {
    assert!(
        n > 0 && dim > 0,
        "latin_hypercube requires n > 0 and dim > 0"
    );
    let mut coordinates: Vec<Vec<f64>> = Vec::with_capacity(dim);
    for _ in 0..dim {
        let mut strata: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut strata);
        let column: Vec<f64> = strata
            .into_iter()
            .map(|s| (s as f64 + rng.uniform()) / n as f64)
            .collect();
        coordinates.push(column);
    }
    (0..n)
        .map(|i| (0..dim).map(|d| coordinates[d][i]).collect())
        .collect()
}

/// Generates a Latin hypercube sample mapped through the standard normal
/// quantile, producing stratified standard-normal points in `dim` dimensions.
pub fn latin_hypercube_normal(rng: &mut RngStream, n: usize, dim: usize) -> Vec<Vector> {
    latin_hypercube(rng, n, dim)
        .into_iter()
        .map(|p| {
            p.iter()
                .map(|&u| normal::quantile(u.clamp(1e-12, 1.0 - 1e-12)))
                .collect()
        })
        .collect()
}

/// Draws a point uniformly distributed on the unit sphere in `dim` dimensions.
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn uniform_on_sphere(rng: &mut RngStream, dim: usize) -> Vector {
    assert!(dim > 0, "uniform_on_sphere requires dim > 0");
    loop {
        let z = rng.standard_normal_vector(dim);
        let n = z.norm();
        if n > 1e-12 {
            return z.scaled(1.0 / n);
        }
    }
}

/// Draws `n` points uniformly on the sphere of radius `radius` in `dim`
/// dimensions.
///
/// # Panics
///
/// Panics if `dim == 0` or `radius < 0`.
pub fn uniform_on_sphere_radius(
    rng: &mut RngStream,
    n: usize,
    dim: usize,
    radius: f64,
) -> Vec<Vector> {
    assert!(radius >= 0.0, "radius must be non-negative");
    (0..n)
        .map(|_| uniform_on_sphere(rng, dim).scaled(radius))
        .collect()
}

/// The `index`-th element of the van der Corput sequence in the given `base`.
///
/// # Panics
///
/// Panics if `base < 2`.
pub fn van_der_corput(mut index: u64, base: u64) -> f64 {
    assert!(base >= 2, "van der Corput base must be at least 2");
    let mut result = 0.0;
    let mut denom = 1.0;
    while index > 0 {
        denom *= base as f64;
        result += (index % base) as f64 / denom;
        index /= base;
    }
    result
}

const HALTON_PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// Generates the first `n` points of the Halton low-discrepancy sequence in
/// `dim` dimensions (skipping the first point at the origin).
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 16` (only the first 16 primes are tabulated).
pub fn halton_sequence(n: usize, dim: usize) -> Vec<Vector> {
    assert!(
        dim > 0 && dim <= HALTON_PRIMES.len(),
        "halton_sequence supports 1..=16 dimensions"
    );
    (1..=n as u64)
        .map(|i| {
            (0..dim)
                .map(|d| van_der_corput(i, HALTON_PRIMES[d]))
                .collect()
        })
        .collect()
}

/// Stratified radii for spherical shell sampling: `count` radii covering
/// `[min_radius, max_radius]` with equal spacing, inclusive of both endpoints.
///
/// # Panics
///
/// Panics if `count == 0` or `min_radius > max_radius` or either is negative.
pub fn shell_radii(min_radius: f64, max_radius: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "shell_radii requires count > 0");
    assert!(
        min_radius >= 0.0 && max_radius >= min_radius,
        "invalid radius range"
    );
    if count == 1 {
        return vec![min_radius];
    }
    let step = (max_radius - min_radius) / (count - 1) as f64;
    (0..count).map(|i| min_radius + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latin_hypercube_stratification() {
        let mut rng = RngStream::from_seed(9);
        let n = 16;
        let pts = latin_hypercube(&mut rng, n, 3);
        assert_eq!(pts.len(), n);
        // Each dimension must have exactly one point per stratum.
        for d in 0..3 {
            let mut strata: Vec<usize> = pts
                .iter()
                .map(|p| (p[d] * n as f64).floor() as usize)
                .collect();
            strata.sort_unstable();
            assert_eq!(strata, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn latin_hypercube_normal_is_finite_and_spread() {
        let mut rng = RngStream::from_seed(10);
        let pts = latin_hypercube_normal(&mut rng, 100, 2);
        assert!(pts.iter().all(|p| p.is_finite()));
        let mean: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / 100.0;
        assert!(mean.abs() < 0.3);
    }

    #[test]
    fn sphere_points_have_unit_norm() {
        let mut rng = RngStream::from_seed(4);
        for dim in [1, 2, 5, 20] {
            let p = uniform_on_sphere(&mut rng, dim);
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sphere_radius_scaling() {
        let mut rng = RngStream::from_seed(4);
        let pts = uniform_on_sphere_radius(&mut rng, 10, 3, 4.5);
        for p in pts {
            assert!((p.norm() - 4.5).abs() < 1e-12);
        }
    }

    #[test]
    fn sphere_is_roughly_isotropic() {
        let mut rng = RngStream::from_seed(21);
        let n = 20_000;
        let mut mean = Vector::zeros(3);
        for _ in 0..n {
            mean += &uniform_on_sphere(&mut rng, 3);
        }
        mean.scale_in_place(1.0 / n as f64);
        assert!(mean.norm() < 0.02, "mean norm {}", mean.norm());
    }

    #[test]
    fn van_der_corput_base2_known_values() {
        assert_eq!(van_der_corput(1, 2), 0.5);
        assert_eq!(van_der_corput(2, 2), 0.25);
        assert_eq!(van_der_corput(3, 2), 0.75);
        assert_eq!(van_der_corput(4, 2), 0.125);
    }

    #[test]
    fn halton_points_in_unit_cube_and_low_discrepancy() {
        let pts = halton_sequence(256, 2);
        assert_eq!(pts.len(), 256);
        assert!(pts
            .iter()
            .all(|p| p.iter().all(|&x| (0.0..1.0).contains(&x))));
        // Mean of a low-discrepancy sequence should be very close to 0.5.
        let mean_x: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / 256.0;
        assert!((mean_x - 0.5).abs() < 0.01);
    }

    #[test]
    fn shell_radii_endpoints() {
        let r = shell_radii(2.0, 6.0, 5);
        assert_eq!(r, vec![2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(shell_radii(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "supports 1..=16")]
    fn halton_rejects_too_many_dims() {
        let _ = halton_sequence(4, 17);
    }

    #[test]
    #[should_panic(expected = "invalid radius range")]
    fn shell_radii_rejects_inverted_range() {
        let _ = shell_radii(5.0, 2.0, 3);
    }
}
