//! Householder QR decomposition and linear least squares.
//!
//! The scaled-sigma-sampling baseline fits a regression model
//! `log P_fail(s) ≈ a + b·log s + c/s²` over a handful of scale factors; the
//! response-surface diagnostics fit low-order polynomial models of the SRAM
//! metric. Both need a numerically sound least-squares solver, provided here
//! via Householder QR.

use crate::{LinalgError, Matrix, Result, Vector};

/// Householder QR decomposition `A = Q R` of an `m × n` matrix with `m ≥ n`.
///
/// The factor `Q` is stored implicitly as Householder reflectors; only the
/// operations needed for least squares (apply `Qᵀ` to a vector, back-substitute
/// against `R`) are exposed.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Packed reflectors (below diagonal) and R (upper triangle including diagonal).
    packed: Matrix,
    /// Householder scalar coefficients, one per reflector.
    betas: Vec<f64>,
}

impl QrDecomposition {
    /// Factors the matrix `a` (which must have at least as many rows as columns).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `a.rows() < a.cols()` or the
    /// matrix is empty.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot factor an empty matrix".to_string(),
            ));
        }
        if m < n {
            return Err(LinalgError::InvalidArgument(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut packed = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += packed[(i, k)] * packed[(i, k)];
            }
            let norm = norm.sqrt();
            // gis-analyze: allow(float-eq, exact-zero column norm: the Householder reflection degenerates)
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if packed[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = packed[(k, k)] - alpha;
            // v = [v0, a(k+1..m, k)]; beta = 2 / (vᵀ v)
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += packed[(i, k)] * packed[(i, k)];
            }
            // gis-analyze: allow(float-eq, exact-zero v'v: reflection is the identity, beta stays 0)
            if vtv == 0.0 {
                betas[k] = 0.0;
                packed[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            betas[k] = beta;

            // Apply the reflector to the remaining columns: A ← (I − βvvᵀ) A.
            for j in (k + 1)..n {
                let mut dot = v0 * packed[(k, j)];
                for i in (k + 1)..m {
                    dot += packed[(i, k)] * packed[(i, j)];
                }
                let scale = beta * dot;
                packed[(k, j)] -= scale * v0;
                for i in (k + 1)..m {
                    let update = scale * packed[(i, k)];
                    packed[(i, j)] -= update;
                }
            }
            // Store R's diagonal entry and keep v below the diagonal (v0 is
            // implicit; we store the tail and remember v0 via recomputation at
            // application time — to keep it simple we store v0 in place of the
            // diagonal during application and fix up afterwards).
            packed[(k, k)] = alpha;
            // Normalize the stored reflector tail so that v0 == 1 at apply time.
            for i in (k + 1)..m {
                packed[(i, k)] /= v0;
            }
            betas[k] = beta * v0 * v0;
        }

        Ok(QrDecomposition { packed, betas })
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// Applies `Qᵀ` to a vector of length `rows()`.
    fn apply_q_transposed(&self, b: &Vector) -> Result<Vector> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "qr_apply_qt",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.clone();
        for k in 0..n {
            let beta = self.betas[k];
            // gis-analyze: allow(float-eq, beta stored as exact 0.0 marks a skipped reflection)
            if beta == 0.0 {
                continue;
            }
            // v = [1, packed[(k+1..m, k)]]
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * y[i];
            }
            let scale = beta * dot;
            y[k] -= scale;
            for i in (k + 1)..m {
                let update = scale * self.packed[(i, k)];
                y[i] -= update;
            }
        }
        Ok(y)
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != rows()`.
    /// * [`LinalgError::Singular`] if `R` has a (near-)zero diagonal entry,
    ///   i.e. the columns of `A` are linearly dependent.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<LeastSquares> {
        let (m, n) = self.packed.shape();
        let y = self.apply_q_transposed(b)?;
        let mut x = Vector::zeros(n);
        let scale = self.packed.norm_max().max(1.0);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.packed[(i, j)] * x[j];
            }
            let diag = self.packed[(i, i)];
            if diag.abs() < crate::SINGULARITY_TOLERANCE * scale {
                return Err(LinalgError::Singular {
                    pivot: i,
                    value: diag.abs(),
                });
            }
            x[i] = acc / diag;
        }
        // Residual norm is the norm of the trailing part of Qᵀ b.
        let mut residual_sq = 0.0;
        for i in n..m {
            residual_sq += y[i] * y[i];
        }
        Ok(LeastSquares {
            solution: x,
            residual_norm: residual_sq.sqrt(),
        })
    }
}

/// Result of a least-squares solve: the coefficient vector and the residual norm.
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquares {
    /// Minimizing coefficient vector `x`.
    pub solution: Vector,
    /// `‖A x − b‖₂` at the minimizer.
    pub residual_norm: f64,
}

/// Convenience wrapper: fit `min ‖A x − b‖₂` in one call.
///
/// # Errors
///
/// Propagates the errors of [`QrDecomposition::new`] and
/// [`QrDecomposition::solve_least_squares`].
pub fn least_squares(a: &Matrix, b: &Vector) -> Result<LeastSquares> {
    QrDecomposition::new(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_system_solved_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let ls = least_squares(&a, &b).unwrap();
        assert!((ls.solution[0] - 0.8).abs() < 1e-12);
        assert!((ls.solution[1] - 1.4).abs() < 1e-12);
        assert!(ls.residual_norm < 1e-12);
    }

    #[test]
    fn overdetermined_line_fit() {
        // Fit y = 2x + 1 exactly from 5 points.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { xs[i] });
        let b: Vector = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let ls = least_squares(&a, &b).unwrap();
        assert!((ls.solution[0] - 1.0).abs() < 1e-10);
        assert!((ls.solution[1] - 2.0).abs() < 1e-10);
        assert!(ls.residual_norm < 1e-10);
    }

    #[test]
    fn noisy_fit_minimizes_residual() {
        // Points off the line: the normal equations give a known solution.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Vector::from_slice(&[0.0, 1.0, 3.0]);
        let ls = least_squares(&a, &b).unwrap();
        // Closed form: intercept = -1/6, slope = 3/2.
        assert!((ls.solution[0] + 1.0 / 6.0).abs() < 1e-10);
        assert!((ls.solution[1] - 1.5).abs() < 1e-10);
        let fitted = a.matvec(&ls.solution).unwrap();
        assert!(((&fitted - &b).norm() - ls.residual_norm).abs() < 1e-10);
    }

    #[test]
    fn rank_deficiency_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            least_squares(&a, &b),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_underdetermined_and_empty() {
        assert!(QrDecomposition::new(&Matrix::zeros(2, 3)).is_err());
        assert!(QrDecomposition::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve_least_squares(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn qr_matches_lu_on_random_square_systems() {
        for n in [3usize, 6, 10] {
            let mut state = 1234u64 + n as u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            };
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let b: Vector = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let x_qr = least_squares(&a, &b).unwrap().solution;
            let x_lu = crate::lu::solve(&a, &b).unwrap();
            assert!((&x_qr - &x_lu).norm() < 1e-8);
        }
    }
}
