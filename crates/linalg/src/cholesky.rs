//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Used to factor covariance matrices of correlated process variations so that
//! whitened standard-normal samples can be colored (`x = L z`), and to evaluate
//! multivariate normal densities via the log-determinant.

use crate::{LinalgError, Matrix, Result, Vector};

/// Cholesky factorization `A = L Lᵀ` with `L` lower triangular.
///
/// # Examples
///
/// ```
/// use gis_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), gis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let l = chol.lower();
/// let reconstructed = l.matmul(&l.transposed())?;
/// assert!((&reconstructed - &a).norm_frobenius() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    lower: Matrix,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read, so mild asymmetry from floating
    /// point noise in the caller is tolerated.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lower = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= lower[(i, k)] * lower[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite {
                            index: i,
                            value: sum,
                        });
                    }
                    lower[(i, j)] = sum.sqrt();
                } else {
                    lower[(i, j)] = sum / lower[(j, j)];
                }
            }
        }
        Ok(Cholesky { lower })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Borrow the lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Consume the decomposition and return the lower-triangular factor.
    pub fn into_lower(self) -> Matrix {
        self.lower
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "cholesky_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lower[(i, j)] * y[j];
            }
            y[i] = acc / self.lower[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lower[(j, i)] * x[j];
            }
            x[i] = acc / self.lower[(i, i)];
        }
        Ok(x)
    }

    /// Applies the coloring transform `x = L z`, mapping an uncorrelated
    /// standard-normal vector `z` to a sample with covariance `A`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `z.len() != dim()`.
    pub fn color(&self, z: &Vector) -> Result<Vector> {
        self.lower.matvec(z)
    }

    /// Applies the whitening transform `z = L⁻¹ x` (forward substitution only).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn whiten(&self, x: &Vector) -> Result<Vector> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "whiten",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let mut z = Vector::zeros(n);
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lower[(i, j)] * z[j];
            }
            z[i] = acc / self.lower[(i, i)];
        }
        Ok(z)
    }

    /// Natural logarithm of the determinant of `A`, computed stably from the
    /// factor diagonal: `log det A = 2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lower[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Mahalanobis quadratic form `xᵀ A⁻¹ x`, evaluated as `‖L⁻¹x‖²`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn mahalanobis_squared(&self, x: &Vector) -> Result<f64> {
        Ok(self.whiten(x)?.norm_squared())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        // Build A = B Bᵀ + n·I which is guaranteed SPD.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transposed()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        for n in [1, 2, 4, 8, 16] {
            let a = spd_matrix(n, 3 + n as u64);
            let chol = Cholesky::new(&a).unwrap();
            let l = chol.lower();
            let recon = l.matmul(&l.transposed()).unwrap();
            assert!((&recon - &a).norm_frobenius() < 1e-9 * a.norm_frobenius());
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd_matrix(6, 99);
        let b: Vector = (0..6).map(|i| i as f64 + 0.5).collect();
        let x_chol = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!((&x_chol - &x_lu).norm() < 1e-9);
    }

    #[test]
    fn whiten_inverts_color() {
        let a = spd_matrix(5, 12);
        let chol = Cholesky::new(&a).unwrap();
        let z = Vector::from_slice(&[0.3, -1.2, 0.7, 2.0, -0.1]);
        let x = chol.color(&z).unwrap();
        let z_back = chol.whiten(&x).unwrap();
        assert!((&z - &z_back).norm() < 1e-10);
    }

    #[test]
    fn log_determinant_matches_lu_determinant() {
        let a = spd_matrix(4, 5);
        let chol = Cholesky::new(&a).unwrap();
        let det_lu = crate::LuDecomposition::new(&a).unwrap().determinant();
        assert!((chol.log_determinant() - det_lu.ln()).abs() < 1e-9);
    }

    #[test]
    fn mahalanobis_of_identity_is_norm_squared() {
        let chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        let x = Vector::from_slice(&[1.0, 2.0, 2.0]);
        assert!((chol.mahalanobis_squared(&x).unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_dimension() {
        let chol = Cholesky::new(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&Vector::zeros(3)).is_err());
        assert!(chol.whiten(&Vector::zeros(3)).is_err());
    }
}
