//! Error type shared by every factorization and solver in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by linear algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// What the caller was trying to do, e.g. `"matvec"`.
        operation: &'static str,
        /// Dimensions of the left/first operand.
        left: (usize, usize),
        /// Dimensions of the right/second operand.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be factored or solved.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
        /// Magnitude of the offending pivot.
        value: f64,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Diagonal index at which a non-positive pivot appeared.
        index: usize,
        /// Value of the offending diagonal entry.
        value: f64,
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// An argument was empty or otherwise invalid.
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {operation}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { pivot, value } => {
                write!(
                    f,
                    "matrix is singular at pivot {pivot} (|pivot| = {value:e})"
                )
            }
            LinalgError::NotPositiveDefinite { index, value } => write!(
                f,
                "matrix is not positive definite at diagonal {index} (value = {value:e})"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            operation: "matvec",
            left: (3, 4),
            right: (5, 1),
        };
        assert!(e.to_string().contains("matvec"));
        assert!(e.to_string().contains("3x4"));

        let e = LinalgError::Singular {
            pivot: 2,
            value: 0.0,
        };
        assert!(e.to_string().contains("singular"));

        let e = LinalgError::NotPositiveDefinite {
            index: 1,
            value: -0.5,
        };
        assert!(e.to_string().contains("positive definite"));

        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));

        let e = LinalgError::InvalidArgument("empty".to_string());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
