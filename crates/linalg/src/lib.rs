//! Dense linear algebra kernels for the high-sigma SRAM extraction suite.
//!
//! This crate provides the small-to-medium dense linear algebra needed by the
//! circuit simulator (modified nodal analysis systems, typically 5–200 unknowns)
//! and by the statistical layer (covariance factorization, least squares for
//! scaled-sigma regression). It is deliberately self-contained: no BLAS, no
//! external math crates, so the whole reproduction builds offline.
//!
//! # Quick example
//!
//! ```
//! use gis_linalg::{Matrix, Vector, LuDecomposition};
//!
//! # fn main() -> Result<(), gis_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&b)?;
//! let residual = &a.matvec(&x)? - &b;
//! assert!(residual.norm() < 1e-12);
//! # Ok(())
//! # }
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod cholesky;
mod error;
mod lu;
mod matrix;
mod qr;
pub mod sparse;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::{solve, LuDecomposition};
pub use matrix::Matrix;
pub use qr::{least_squares, LeastSquares, QrDecomposition};
pub use vector::Vector;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Tolerance below which a pivot is considered numerically singular.
pub const SINGULARITY_TOLERANCE: f64 = 1e-14;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_compiles() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0]);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let residual = &a.matvec(&x).unwrap() - &b;
        assert!(residual.norm() < 1e-12);
    }
}
