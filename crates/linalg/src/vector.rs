//! Dense, heap-allocated vector of `f64` with the arithmetic needed by the suite.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense vector of `f64` values.
///
/// `Vector` is the workhorse container for node voltages, variation vectors in
/// whitened z-space, gradients and sample points. It intentionally supports a
/// rich but small set of operations; anything fancier lives in the consumers.
///
/// # Examples
///
/// ```
/// use gis_linalg::Vector;
///
/// let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
/// let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
/// assert_eq!(a.dot(&b).unwrap(), 32.0);
/// assert!((a.norm() - 14.0_f64.sqrt()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` entries, all equal to `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a vector from a slice, copying the values.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector taking ownership of `values`.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Vector { data: values }
    }

    /// Creates a unit basis vector `e_i` of dimension `len`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `index >= len`.
    pub fn basis(len: usize, index: usize) -> Result<Self> {
        if index >= len {
            return Err(LinalgError::InvalidArgument(format!(
                "basis index {index} out of range for length {len}"
            )));
        }
        let mut v = Vector::zeros(len);
        v.data[index] = 1.0;
        Ok(v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying storage as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrow the underlying storage as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the vector and return the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Iterate mutably over the entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Euclidean norm, cheaper than [`Vector::norm`] when the square is what you need.
    pub fn norm_squared(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>()
    }

    /// Infinity norm (largest absolute entry). Returns `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns a new vector scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Scales the vector in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// `self + alpha * other` (BLAS `axpy`), returning a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy(&self, alpha: f64, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "axpy",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + alpha * b)
                .collect(),
        })
    }

    /// Returns the unit vector in the direction of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the vector has (near-)zero norm.
    pub fn normalized(&self) -> Result<Vector> {
        let n = self.norm();
        if n < crate::SINGULARITY_TOLERANCE {
            return Err(LinalgError::InvalidArgument(
                "cannot normalize a zero vector".to_string(),
            ));
        }
        Ok(self.scaled(1.0 / n))
    }

    /// Component-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "hadamard",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the entries. Returns `0.0` for an empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest entry, or `f64::NEG_INFINITY` for an empty vector.
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .fold(f64::NEG_INFINITY, |acc, &x| acc.max(x))
    }

    /// Smallest entry, or `f64::INFINITY` for an empty vector.
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |acc, &x| acc.min(x))
    }

    /// Returns `true` if every entry is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Set every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        for x in &mut self.data {
            *x = value;
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6e}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f64>> for Vector {
    fn from(values: Vec<f64>) -> Self {
        Vector::from_vec(values)
    }
}

impl From<Vector> for Vec<f64> {
    fn from(v: Vector) -> Self {
        v.into_vec()
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

// Element-wise operators panic on dimension mismatch: they are used in hot inner
// loops where the dimensions are fixed by construction, and the fallible
// equivalents (`axpy`, `dot`) exist for boundary code.
impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector add dimension mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector sub dimension mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector add dimension mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector sub dimension mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(4);
        assert_eq!(z.len(), 4);
        assert_eq!(z.sum(), 0.0);
        let f = Vector::filled(3, 2.5);
        assert_eq!(f.sum(), 7.5);
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(3, 1).unwrap();
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
        assert!(Vector::basis(3, 3).is_err());
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_squared(), 25.0);
        assert_eq!(a.norm_inf(), 4.0);
        let b = Vector::from_slice(&[1.0, -1.0]);
        assert_eq!(a.dot(&b).unwrap(), -1.0);
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn axpy_matches_manual() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[10.0, 20.0]);
        let c = a.axpy(0.5, &b).unwrap();
        assert_eq!(c.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn normalized_unit_norm() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        let u = a.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vector::zeros(2).normalized().is_err());
    }

    #[test]
    fn hadamard_product() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let b = Vector::from_slice(&[2.0, 3.0, 4.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[2.0, 6.0, 12.0]);
    }

    #[test]
    fn statistics_helpers() {
        let a = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert!(a.is_finite());
        let mut b = a.clone();
        b[0] = f64::NAN;
        assert!(!b.is_finite());
    }

    #[test]
    fn operator_overloads() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn conversions_and_iteration() {
        let v: Vector = vec![1.0, 2.0].into();
        let back: Vec<f64> = v.clone().into();
        assert_eq!(back, vec![1.0, 2.0]);
        let collected: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(collected.as_slice(), &[0.0, 1.0, 2.0]);
        let total: f64 = (&collected).into_iter().sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from_slice(&[1.0]);
        assert!(!format!("{v}").is_empty());
        assert!(!format!("{}", Vector::zeros(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_panics_on_mismatch() {
        let _ = &Vector::zeros(2) + &Vector::zeros(3);
    }
}
