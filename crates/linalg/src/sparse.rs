//! Sparse LU factorization with a reusable symbolic plan, in the spirit of
//! the KLU-class static-pattern solvers used by production SPICE engines.
//!
//! Circuit matrices have a property dense factorization wastes: the sparsity
//! pattern is fixed by the netlist topology, while only the numeric values
//! change between Newton iterations and Monte-Carlo samples. This module
//! splits the factorization accordingly:
//!
//! 1. **Symbolic analysis** ([`SymbolicLu::analyze`]) runs *once per
//!    topology*. It takes the assembly pattern (a [`SparsityPattern`] in
//!    compressed sparse row form) and predicts the fill-in of Gaussian
//!    elimination along the expected (diagonal) pivot order.
//! 2. **Numeric refactorization** ([`SparseLu::factorize`]) reuses the plan:
//!    assembly writes straight into the factor workspace through the stamp
//!    pattern ([`SparseLu::add_at`]), and elimination and the triangular
//!    solves iterate only over the per-row fill pattern. When partial
//!    pivoting deviates from the predicted order, the plan **grows** to cover
//!    the new fill — an amortized cost: the first factorization of a topology
//!    warms the plan, and every subsequent refactorization of the warmed plan
//!    performs zero heap allocations.
//!
//! # Bit-exact equivalence with the dense kernel
//!
//! The numeric phase performs *the same partial-pivot arithmetic in the same
//! order* as [`crate::LuDecomposition`]; it merely skips operations whose
//! operands are structural (exact `+0.0`) zeros. Skipping those is
//! floating-point exact:
//!
//! * a structurally zero column entry yields the multiplier `0.0 / pivot`,
//!   which the dense kernel also computes and then skips (`multiplier != 0.0`
//!   guards its inner loop);
//! * a structurally zero pivot-row entry contributes `x -= m * 0.0`, a no-op
//!   because the workspace never holds `-0.0` (all slots start at `+0.0`,
//!   and IEEE-754 subtraction of equal finite values rounds to `+0.0`);
//! * the pivot search compares absolute values, and a structural zero can
//!   never win a strictly-greater comparison against the incumbent.
//!
//! Consequently the factors, the permutation, the singularity verdicts and
//! every solution vector are bit-identical to the dense path — asserted by
//! this module's tests and by the circuit-level golden tests.
//!
//! # Storage layout
//!
//! MNA systems in this suite are small (a dozen unknowns), so the factor
//! workspace keeps each row as a dense stride — scatter/gather indexing would
//! cost more than it saves at this size — while *iteration* is driven
//! exclusively by the per-row fill pattern (sorted column lists mirrored as
//! bitmasks). Rows are never physically moved on pivoting; a position→row
//! indirection plays the role of the dense kernel's row swaps, which keeps
//! each row's fill pattern attached to its storage.
//!
//! # Example
//!
//! ```
//! use gis_linalg::sparse::{PatternBuilder, SparseLu, SymbolicLu};
//!
//! # fn main() -> Result<(), gis_linalg::LinalgError> {
//! // Pattern of a 3x3 arrow matrix (dense last row/column + diagonal).
//! let mut pattern = PatternBuilder::new(3);
//! for i in 0..3 {
//!     pattern.insert(i, i);
//!     pattern.insert(i, 2);
//!     pattern.insert(2, i);
//! }
//! let symbolic = SymbolicLu::analyze(&pattern.build());
//! let mut lu = SparseLu::new(symbolic);
//!
//! // Numeric phase, repeatable with new values at zero steady-state allocations.
//! lu.clear();
//! lu.add_at(0, 0, 4.0);
//! lu.add_at(1, 1, 3.0);
//! lu.add_at(2, 2, 5.0);
//! lu.add_at(0, 2, 1.0);
//! lu.add_at(1, 2, 1.0);
//! lu.add_at(2, 0, 1.0);
//! lu.add_at(2, 1, 1.0);
//! lu.factorize()?;
//! let mut x = [0.0; 3];
//! lu.solve(&[5.0, 4.0, 7.0], &mut x)?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 1.0).abs() < 1e-12);
//! assert!((x[2] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::{LinalgError, Result, SINGULARITY_TOLERANCE};

/// Incremental builder for a [`SparsityPattern`].
///
/// Duplicate insertions are fine (assembly naturally stamps the same slot from
/// several devices); they are deduplicated by [`PatternBuilder::build`].
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    rows: Vec<Vec<u32>>,
}

impl PatternBuilder {
    /// Creates an empty pattern builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        PatternBuilder {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Marks entry `(row, col)` as structurally nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn insert(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n, "pattern index out of range");
        self.rows[row].push(col as u32);
    }

    /// Finishes the builder into a deduplicated CSR [`SparsityPattern`].
    pub fn build(mut self) -> SparsityPattern {
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0u32);
        for row in &mut self.rows {
            row.sort_unstable();
            row.dedup();
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len() as u32);
        }
        SparsityPattern {
            n: self.n,
            row_ptr,
            col_idx,
        }
    }
}

/// A structural sparsity pattern in compressed sparse row (CSR) form.
///
/// CSR is the natural orientation here because both assembly (row-wise
/// stamps) and Gaussian elimination with *row* pivoting walk rows; a CSC
/// mirror would only be needed for column-pivoting strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
}

impl SparsityPattern {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Sorted column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n`.
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Returns `true` if `(row, col)` is structurally nonzero.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        row < self.n && self.row_cols(row).binary_search(&(col as u32)).is_ok()
    }
}

#[inline]
fn bit_is_set(words: &[u64], col: usize) -> bool {
    words[col / 64] & (1u64 << (col % 64)) != 0
}

#[inline]
fn set_bit(words: &mut [u64], col: usize) {
    words[col / 64] |= 1u64 << (col % 64);
}

/// The reusable symbolic plan: the assembly (stamp) pattern plus a per-row
/// fill pattern.
///
/// [`SymbolicLu::analyze`] seeds the fill pattern by symbolic Gaussian
/// elimination along the diagonal pivot order — the order partial pivoting
/// almost always selects for the diagonally-loaded MNA matrices this crate
/// factors (every node row carries a GMIN diagonal). When numeric pivoting
/// deviates (e.g. the zero-diagonal branch rows of voltage sources), the
/// numeric phase extends the fill pattern on first encounter and the plan
/// stays warm from then on.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    words_per_row: usize,
    /// The assembly (stamp) pattern.
    stamp: SparsityPattern,
    /// Stamp membership bitmasks (`words_per_row` words per row).
    stamp_mask: Vec<u64>,
    /// Flat `row * n + col` indices of every stamp slot (the singularity-scale
    /// scan walks this instead of chasing the CSR indirection).
    stamp_slots: Vec<u32>,
    /// Fill pattern: sorted column list per row (superset of the stamp row).
    fill_cols: Vec<Vec<u32>>,
    /// Fill membership bitmasks, kept in lockstep with `fill_cols`.
    fill_mask: Vec<u64>,
    /// Flat `row * n + col` indices of the whole fill pattern — the
    /// workspace-reset loop walks this single list.
    fill_slots: Vec<u32>,
}

impl SymbolicLu {
    /// Runs the one-time symbolic analysis of `pattern`.
    pub fn analyze(pattern: &SparsityPattern) -> Self {
        let n = pattern.n();
        let words_per_row = n.div_ceil(64).max(1);

        let mut fill_mask = vec![0u64; n * words_per_row];
        for r in 0..n {
            let row_words = &mut fill_mask[r * words_per_row..(r + 1) * words_per_row];
            for &c in pattern.row_cols(r) {
                set_bit(row_words, c as usize);
            }
        }
        // The stamp masks are the pre-elimination snapshot of the fill masks.
        let stamp_mask = fill_mask.clone();

        // Symbolic elimination along the diagonal pivot order: when row r
        // (r > k) has a nonzero in column k, it absorbs the pivot row's
        // pattern right of k. Fill added at step k only affects columns > k,
        // so one ascending pass is complete.
        let mut upper = vec![0u64; words_per_row];
        for k in 0..n {
            let pivot_row = &fill_mask[k * words_per_row..(k + 1) * words_per_row];
            // upper = pattern(pivot row) ∩ {cols > k}
            upper.copy_from_slice(pivot_row);
            for (word_index, word) in upper.iter_mut().enumerate() {
                let base = word_index * 64;
                if base + 63 <= k {
                    *word = 0;
                } else if base <= k {
                    let keep_from = k - base + 1; // 1..=63
                    *word &= !((1u64 << keep_from) - 1);
                }
            }
            for r in (k + 1)..n {
                let row = &mut fill_mask[r * words_per_row..(r + 1) * words_per_row];
                if bit_is_set(row, k) {
                    for (w, u) in row.iter_mut().zip(&upper) {
                        *w |= u;
                    }
                }
            }
        }

        // Freeze the masks into sorted per-row column lists.
        let mut fill_cols = Vec::with_capacity(n);
        for r in 0..n {
            let row = &fill_mask[r * words_per_row..(r + 1) * words_per_row];
            let mut cols = Vec::new();
            for c in 0..n {
                if bit_is_set(row, c) {
                    cols.push(c as u32);
                }
            }
            fill_cols.push(cols);
        }

        let mut stamp_slots = Vec::with_capacity(pattern.nnz());
        for r in 0..n {
            for &c in pattern.row_cols(r) {
                stamp_slots.push((r * n + c as usize) as u32);
            }
        }
        let mut fill_slots = Vec::new();
        for (r, cols) in fill_cols.iter().enumerate() {
            for &c in cols {
                fill_slots.push((r * n + c as usize) as u32);
            }
        }

        SymbolicLu {
            n,
            words_per_row,
            stamp: pattern.clone(),
            stamp_mask,
            stamp_slots,
            fill_cols,
            fill_mask,
            fill_slots,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the assembly pattern.
    pub fn stamp_nnz(&self) -> usize {
        self.stamp.nnz()
    }

    /// Structural nonzeros of the current fill pattern (factor pattern).
    pub fn fill_nnz(&self) -> usize {
        self.fill_cols.iter().map(Vec::len).sum()
    }

    /// The assembly pattern this plan was derived from.
    pub fn stamp_pattern(&self) -> &SparsityPattern {
        &self.stamp
    }

    /// Fraction of the dense `n²` storage the fill pattern occupies.
    pub fn fill_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.fill_nnz() as f64 / (self.n * self.n) as f64
        }
    }

    #[inline]
    fn fill_row_mask(&self, r: usize) -> &[u64] {
        &self.fill_mask[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    #[inline]
    fn in_stamp(&self, row: usize, col: usize) -> bool {
        bit_is_set(
            &self.stamp_mask[row * self.words_per_row..(row + 1) * self.words_per_row],
            col,
        )
    }

    /// Merges `upper` (a column mask) into row `r`'s fill pattern. Returns
    /// `true` (and rebuilds the row's sorted column list) if anything new was
    /// added — the dynamic-growth path taken when numeric pivoting deviates
    /// from the predicted order.
    fn absorb(&mut self, r: usize, upper: &[u64]) -> bool {
        let row = &mut self.fill_mask[r * self.words_per_row..(r + 1) * self.words_per_row];
        let mut grew = false;
        for (w, u) in row.iter_mut().zip(upper) {
            if *u & !*w != 0 {
                grew = true;
            }
            *w |= u;
        }
        if grew {
            let row = &self.fill_mask[r * self.words_per_row..(r + 1) * self.words_per_row];
            let cols = &mut self.fill_cols[r];
            cols.clear();
            for c in 0..self.n {
                if bit_is_set(row, c) {
                    cols.push(c as u32);
                }
            }
            self.fill_slots.clear();
            for (row_index, cols) in self.fill_cols.iter().enumerate() {
                for &c in cols {
                    self.fill_slots
                        .push((row_index * self.n + c as usize) as u32);
                }
            }
        }
        grew
    }
}

/// Numeric sparse LU with partial pivoting over a reusable [`SymbolicLu`] plan.
///
/// The lifecycle per refactorization is
/// [`clear`](SparseLu::clear) → [`add_at`](SparseLu::add_at)… →
/// [`factorize`](SparseLu::factorize) → [`solve`](SparseLu::solve)…,
/// and on a warmed plan none of those steps allocates.
#[derive(Debug, Clone)]
pub struct SparseLu {
    symbolic: SymbolicLu,
    /// Dense-strided factor workspace; only fill-pattern slots are ever
    /// touched, everything else stays exactly `+0.0`.
    work: Vec<f64>,
    /// `row_at[pos]` = original row currently at elimination position `pos`
    /// (the numeric equivalent of the dense kernel's row swaps).
    row_at: Vec<u32>,
    /// Scratch mask for the pivot row's right-of-k columns.
    upper: Vec<u64>,
    permutation_sign: f64,
    factored: bool,
    /// Straight-line elimination program recorded by the first
    /// factorization (KLU-style refactor): every slot address resolved, no
    /// searches or mask tests left. Replay guards each step's pivot choice
    /// against the recorded one and falls back to the recording path when
    /// numeric pivoting deviates, so results stay bit-identical.
    program: EliminationProgram,
    has_program: bool,
}

/// The recorded elimination/solve schedule of one pivot sequence.
///
/// `factor_ops`/`fwd_ops`/`bwd_ops` are flat `u32` streams; see the replay
/// loops for their grammar. All buffers are reused across re-recordings.
#[derive(Debug, Clone, Default)]
struct EliminationProgram {
    /// Concatenated pivot-scan windows: for step `k`, the `n-k` workspace
    /// slots of column `k` at positions `k..n` (given the recorded history).
    scan_slots: Vec<u32>,
    /// Start of step `k`'s window in `scan_slots`.
    scan_off: Vec<u32>,
    /// Recorded winning scan position (relative to the window start) per step.
    expected_rel: Vec<u32>,
    /// Per step: `[ncand, (mslot, npairs, (dst, src)*npairs)*ncand]`.
    factor_ops: Vec<u32>,
    /// Start of step `k`'s entry in `factor_ops`.
    factor_off: Vec<u32>,
    /// Final row permutation: `b` index per elimination position.
    perm: Vec<u32>,
    /// Forward substitution: per `i` in `1..n`: `[cnt, (slot, j)*cnt]`.
    fwd_ops: Vec<u32>,
    /// Backward substitution: per `i` in `n-1..=0`:
    /// `[diag_slot, cnt, (slot, j)*cnt]`.
    bwd_ops: Vec<u32>,
}

impl EliminationProgram {
    fn clear(&mut self) {
        self.scan_slots.clear();
        self.scan_off.clear();
        self.expected_rel.clear();
        self.factor_ops.clear();
        self.factor_off.clear();
        self.perm.clear();
        self.fwd_ops.clear();
        self.bwd_ops.clear();
    }

    /// Drops everything from step `k` onward (after a pivot deviation: the
    /// validated prefix stays, the suffix is re-recorded).
    fn truncate_at(&mut self, k: usize) {
        self.scan_slots.truncate(self.scan_off[k] as usize);
        self.scan_off.truncate(k);
        self.expected_rel.truncate(k);
        self.factor_ops.truncate(self.factor_off[k] as usize);
        self.factor_off.truncate(k);
        self.perm.clear();
        self.fwd_ops.clear();
        self.bwd_ops.clear();
    }
}

impl SparseLu {
    /// Creates the numeric workspace for `symbolic`.
    pub fn new(symbolic: SymbolicLu) -> Self {
        let n = symbolic.n();
        let words = symbolic.words_per_row;
        SparseLu {
            symbolic,
            work: vec![0.0; n * n],
            row_at: (0..n as u32).collect(),
            upper: vec![0u64; words],
            permutation_sign: 1.0,
            factored: false,
            program: EliminationProgram::default(),
            has_program: false,
        }
    }

    /// The symbolic plan backing this workspace.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.symbolic
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.symbolic.n
    }

    /// Resets every fill-pattern slot to `+0.0`, readying the workspace for a
    /// fresh assembly. Slots outside the fill pattern are never written, so
    /// they do not need resetting.
    /// gis-analyze: no_alloc
    pub fn clear(&mut self) {
        for &slot in &self.symbolic.fill_slots {
            self.work[slot as usize] = 0.0;
        }
        self.factored = false;
    }

    /// Adds `value` at `(row, col)` — the sparse counterpart of
    /// [`crate::Matrix::add_at`]. The slot must belong to the assembly pattern
    /// the symbolic plan was built from.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(row, col)` is outside the assembly pattern;
    /// release builds rely on the caller stamping the analyzed pattern (the
    /// circuit layer derives both from the same netlist walk).
    #[inline]
    /// gis-analyze: no_alloc
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(
            self.symbolic.in_stamp(row, col),
            "stamp at ({row}, {col}) is outside the analyzed pattern"
        );
        self.work[row * self.symbolic.n + col] += value;
    }

    /// Flat slot handle of `(row, col)` for [`SparseLu::add_to_slot`] — lets
    /// hot assembly loops precompute their stamp destinations once per
    /// topology instead of re-deriving them per Newton iteration.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is outside the assembly pattern.
    pub fn slot(&self, row: usize, col: usize) -> u32 {
        assert!(
            self.symbolic.in_stamp(row, col),
            "slot ({row}, {col}) is outside the analyzed pattern"
        );
        (row * self.symbolic.n + col) as u32
    }

    /// Adds `value` at a slot previously obtained from [`SparseLu::slot`].
    #[inline]
    /// gis-analyze: no_alloc
    pub fn add_to_slot(&mut self, slot: u32, value: f64) {
        self.work[slot as usize] += value;
    }

    /// Factors the assembled matrix in place, reusing (and if numeric
    /// pivoting deviates from the predicted order, growing) the symbolic
    /// plan.
    ///
    /// Performs the identical partial-pivot elimination as
    /// [`crate::LuDecomposition::new`] restricted to the fill pattern, so the
    /// factors, permutation, and singularity verdicts match the dense kernel
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] under exactly the same condition as
    /// the dense kernel: a pivot magnitude below [`SINGULARITY_TOLERANCE`]
    /// relative to the largest assembled magnitude.
    /// gis-analyze: no_alloc
    pub fn factorize(&mut self) -> Result<()> {
        for (pos, r) in self.row_at.iter_mut().enumerate() {
            *r = pos as u32;
        }
        self.permutation_sign = 1.0;

        // Same singularity scale as the dense kernel: the maximum absolute
        // entry of the assembled matrix (structural zeros contribute 0).
        // `f64::max` is a pure selection, so folding in four interleaved
        // chains returns the identical value as the dense kernel's single
        // left fold while breaking the latency chain.
        let mut m0 = 0.0f64;
        let mut m1 = 0.0f64;
        let mut m2 = 0.0f64;
        let mut m3 = 0.0f64;
        let mut chunks = self.symbolic.stamp_slots.chunks_exact(4);
        for c in &mut chunks {
            m0 = m0.max(self.work[c[0] as usize].abs());
            m1 = m1.max(self.work[c[1] as usize].abs());
            m2 = m2.max(self.work[c[2] as usize].abs());
            m3 = m3.max(self.work[c[3] as usize].abs());
        }
        for &slot in chunks.remainder() {
            m0 = m0.max(self.work[slot as usize].abs());
        }
        let scale = m0.max(m1).max(m2).max(m3).max(1.0);

        if self.symbolic.words_per_row == 1 {
            if self.has_program {
                self.replay(scale)
            } else {
                self.program.clear();
                let outcome = self.record_from(0, scale);
                self.has_program = outcome.is_ok();
                outcome
            }
        } else {
            self.factorize_general(scale)
        }
    }

    /// Replays the recorded elimination program: a straight-line schedule
    /// with every slot address resolved. Each step's pivot scan performs the
    /// identical comparisons as the recording pass; if the winning position
    /// deviates from the recorded one (values moved enough to change the
    /// pivot), the validated prefix is kept and the suffix re-recorded.
    /// gis-analyze: no_alloc
    fn replay(&mut self, scale: f64) -> Result<()> {
        let n = self.symbolic.n;
        for k in 0..n {
            let scan_start = self.program.scan_off[k] as usize;
            let window = &self.program.scan_slots[scan_start..scan_start + (n - k)];
            let mut rel = 0usize;
            let mut pivot_value = self.work[window[0] as usize].abs();
            for (i, &slot) in window.iter().enumerate().skip(1) {
                let v = self.work[slot as usize].abs();
                if v > pivot_value {
                    pivot_value = v;
                    rel = i;
                }
            }
            if pivot_value < SINGULARITY_TOLERANCE * scale {
                self.has_program = false;
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if rel as u32 != self.program.expected_rel[k] {
                // Pivot deviation: the steps replayed so far are identical to
                // what the recording path would have done, so recording can
                // resume mid-elimination.
                self.program.truncate_at(k);
                self.has_program = false;
                let outcome = self.record_from(k, scale);
                self.has_program = outcome.is_ok();
                return outcome;
            }
            if rel != 0 {
                self.row_at.swap(k, k + rel);
                self.permutation_sign = -self.permutation_sign;
            }
            let pivot = self.work[window[rel] as usize];

            let mut cursor = self.program.factor_off[k] as usize;
            let ops = &self.program.factor_ops;
            let ncand = ops[cursor] as usize;
            cursor += 1;
            for _ in 0..ncand {
                let mslot = ops[cursor] as usize;
                let npairs = ops[cursor + 1] as usize;
                cursor += 2;
                let multiplier = self.work[mslot] / pivot;
                self.work[mslot] = multiplier;
                // gis-analyze: allow(float-eq, structural-zero skip keeps sparse elimination bit-identical to dense)
                if multiplier != 0.0 {
                    for _ in 0..npairs {
                        let dst = ops[cursor] as usize;
                        let src = ops[cursor + 1] as usize;
                        cursor += 2;
                        let delta = multiplier * self.work[src];
                        self.work[dst] -= delta;
                    }
                } else {
                    cursor += 2 * npairs;
                }
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Elimination for `n <= 64` starting at step `k0`, recording the
    /// schedule into the program buffers as it goes. Row masks are single
    /// machine words on this path, so membership and coverage tests are one
    /// AND each.
    fn record_from(&mut self, k0: usize, scale: f64) -> Result<()> {
        let n = self.symbolic.n;
        for k in k0..n {
            // Pivot search: identical strictly-greater scan as the dense
            // kernel; structural zeros read as exact 0.0 and never win.
            self.program
                .scan_off
                .push(self.program.scan_slots.len() as u32);
            let first_slot = (self.row_at[k] as usize * n + k) as u32;
            self.program.scan_slots.push(first_slot);
            let mut pivot_pos = k;
            let mut pivot_value = self.work[first_slot as usize].abs();
            for pos in (k + 1)..n {
                let slot = (self.row_at[pos] as usize * n + k) as u32;
                self.program.scan_slots.push(slot);
                let v = self.work[slot as usize].abs();
                if v > pivot_value {
                    pivot_value = v;
                    pivot_pos = pos;
                }
            }
            self.program.expected_rel.push((pivot_pos - k) as u32);
            if pivot_value < SINGULARITY_TOLERANCE * scale {
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if pivot_pos != k {
                self.row_at.swap(k, pivot_pos);
                self.permutation_sign = -self.permutation_sign;
            }
            let pr = self.row_at[k] as usize;
            let pr_off = pr * n;
            let pivot = self.work[pr_off + k];
            // Pivot-row columns strictly right of k, as a mask.
            let upper: u64 = self.symbolic.fill_mask[pr] & !(u64::MAX >> (63 - k));
            let col_k_bit: u64 = 1u64 << k;

            self.program
                .factor_off
                .push(self.program.factor_ops.len() as u32);
            let ncand_index = self.program.factor_ops.len();
            self.program.factor_ops.push(0);
            let mut ncand = 0u32;
            for pos in (k + 1)..n {
                let r = self.row_at[pos] as usize;
                // A row without column k in its fill pattern holds an exact
                // structural zero there: the dense kernel computes multiplier
                // 0.0 and skips the update, leaving the row untouched.
                if self.symbolic.fill_mask[r] & col_k_bit == 0 {
                    continue;
                }
                ncand += 1;
                let r_off = r * n;
                let multiplier = self.work[r_off + k] / pivot;
                self.work[r_off + k] = multiplier;
                self.program.factor_ops.push((r_off + k) as u32);
                let npairs_index = self.program.factor_ops.len();
                self.program.factor_ops.push(0);
                // The pair list is structural: it is recorded whether or not
                // this multiplier happens to be zero right now.
                if upper & !self.symbolic.fill_mask[r] != 0 {
                    // Pivoting deviated from the symbolic prediction: grow
                    // the row's fill pattern (cold; the plan stays warm
                    // afterwards).
                    self.upper[0] = upper;
                    let upper_buf = std::mem::take(&mut self.upper);
                    self.symbolic.absorb(r, &upper_buf);
                    self.upper = upper_buf;
                }
                let mut npairs = 0u32;
                // gis-analyze: allow(float-eq, structural-zero skip keeps sparse elimination bit-identical to dense)
                if multiplier != 0.0 {
                    for &j in &self.symbolic.fill_cols[pr] {
                        let j = j as usize;
                        if j <= k {
                            continue;
                        }
                        let delta = multiplier * self.work[pr_off + j];
                        self.work[r_off + j] -= delta;
                        self.program.factor_ops.push((r_off + j) as u32);
                        self.program.factor_ops.push((pr_off + j) as u32);
                        npairs += 1;
                    }
                } else {
                    for &j in &self.symbolic.fill_cols[pr] {
                        let j = j as usize;
                        if j <= k {
                            continue;
                        }
                        self.program.factor_ops.push((r * n + j) as u32);
                        self.program.factor_ops.push((pr_off + j) as u32);
                        npairs += 1;
                    }
                }
                self.program.factor_ops[npairs_index] = npairs;
            }
            self.program.factor_ops[ncand_index] = ncand;
        }

        // Record the triangular-solve schedule for this pivot sequence.
        self.program.perm.clear();
        self.program.perm.extend_from_slice(&self.row_at);
        self.program.fwd_ops.clear();
        for i in 1..n {
            let r = self.row_at[i] as usize;
            let cnt_index = self.program.fwd_ops.len();
            self.program.fwd_ops.push(0);
            let mut cnt = 0u32;
            for &j in &self.symbolic.fill_cols[r] {
                let j = j as usize;
                if j >= i {
                    break;
                }
                self.program.fwd_ops.push((r * n + j) as u32);
                self.program.fwd_ops.push(j as u32);
                cnt += 1;
            }
            self.program.fwd_ops[cnt_index] = cnt;
        }
        self.program.bwd_ops.clear();
        for i in (0..n).rev() {
            let r = self.row_at[i] as usize;
            self.program.bwd_ops.push((r * n + i) as u32);
            let cnt_index = self.program.bwd_ops.len();
            self.program.bwd_ops.push(0);
            let mut cnt = 0u32;
            for &j in &self.symbolic.fill_cols[r] {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                self.program.bwd_ops.push((r * n + j) as u32);
                self.program.bwd_ops.push(j as u32);
                cnt += 1;
            }
            self.program.bwd_ops[cnt_index] = cnt;
        }

        self.factored = true;
        Ok(())
    }

    /// Generic-width elimination for `n > 64` (multi-word row masks).
    fn factorize_general(&mut self, scale: f64) -> Result<()> {
        let n = self.symbolic.n;
        for k in 0..n {
            let mut pivot_pos = k;
            let mut pivot_value = self.work[self.row_at[k] as usize * n + k].abs();
            for pos in (k + 1)..n {
                let v = self.work[self.row_at[pos] as usize * n + k].abs();
                if v > pivot_value {
                    pivot_value = v;
                    pivot_pos = pos;
                }
            }
            if pivot_value < SINGULARITY_TOLERANCE * scale {
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if pivot_pos != k {
                self.row_at.swap(k, pivot_pos);
                self.permutation_sign = -self.permutation_sign;
            }
            let pr = self.row_at[k] as usize;
            let pivot = self.work[pr * n + k];

            // upper = pattern(pivot row) ∩ {cols > k}, for fill propagation.
            self.upper.copy_from_slice(self.symbolic.fill_row_mask(pr));
            for (word_index, word) in self.upper.iter_mut().enumerate() {
                let base = word_index * 64;
                if base + 63 <= k {
                    *word = 0;
                } else if base <= k {
                    let keep_from = k - base + 1; // 1..=63
                    *word &= !((1u64 << keep_from) - 1);
                }
            }

            for pos in (k + 1)..n {
                let r = self.row_at[pos] as usize;
                if !bit_is_set(self.symbolic.fill_row_mask(r), k) {
                    continue;
                }
                let multiplier = self.work[r * n + k] / pivot;
                self.work[r * n + k] = multiplier;
                // gis-analyze: allow(float-eq, structural-zero skip keeps sparse elimination bit-identical to dense)
                if multiplier != 0.0 {
                    self.symbolic.absorb(r, &self.upper);
                    let pivot_cols = &self.symbolic.fill_cols[pr];
                    let start = pivot_cols.partition_point(|&c| (c as usize) <= k);
                    for &j in &pivot_cols[start..] {
                        let j = j as usize;
                        let delta = multiplier * self.work[pr * n + j];
                        self.work[r * n + j] -= delta;
                    }
                }
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` with the current factors, writing into `x`.
    ///
    /// The triangular substitutions iterate each row's fill pattern in the
    /// same ascending order as the dense kernel's full-column loops; skipped
    /// slots are exact zeros, so the solution is bit-identical to
    /// [`crate::LuDecomposition::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b`/`x` have the wrong
    /// length, or [`LinalgError::InvalidArgument`] if [`SparseLu::factorize`]
    /// has not succeeded since the last [`SparseLu::clear`].
    /// gis-analyze: no_alloc
    pub fn solve(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let n = self.symbolic.n;
        if b.len() != n || x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse_lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        if !self.factored {
            return Err(LinalgError::InvalidArgument(
                "sparse LU must be factorized before solving".to_string(),
            ));
        }
        if self.has_program {
            // Straight-line replay of the recorded substitution schedule:
            // the same operations as the generic loops below, with every
            // slot/index pre-resolved.
            for (pos, &r) in self.program.perm.iter().enumerate() {
                x[pos] = b[r as usize];
            }
            let mut cursor = 0usize;
            let ops = &self.program.fwd_ops;
            for xi in 1..n {
                let cnt = ops[cursor] as usize;
                cursor += 1;
                let mut acc = x[xi];
                for _ in 0..cnt {
                    let slot = ops[cursor] as usize;
                    let j = ops[cursor + 1] as usize;
                    cursor += 2;
                    acc -= self.work[slot] * x[j];
                }
                x[xi] = acc;
            }
            let mut cursor = 0usize;
            let ops = &self.program.bwd_ops;
            for xi in (0..n).rev() {
                let diag = ops[cursor] as usize;
                let cnt = ops[cursor + 1] as usize;
                cursor += 2;
                let mut acc = x[xi];
                for _ in 0..cnt {
                    let slot = ops[cursor] as usize;
                    let j = ops[cursor + 1] as usize;
                    cursor += 2;
                    acc -= self.work[slot] * x[j];
                }
                x[xi] = acc / self.work[diag];
            }
            return Ok(());
        }
        // Apply the permutation: x = P b.
        for (pos, &r) in self.row_at.iter().enumerate() {
            x[pos] = b[r as usize];
        }
        // Forward substitution with unit-diagonal L (each row's pattern is
        // sorted, so the sub-diagonal prefix ends at the first col >= i).
        for i in 1..n {
            let r = self.row_at[i] as usize;
            let row = &self.work[r * n..(r + 1) * n];
            let mut acc = x[i];
            for &j in &self.symbolic.fill_cols[r] {
                let j = j as usize;
                if j >= i {
                    break;
                }
                acc -= row[j] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let r = self.row_at[i] as usize;
            let row = &self.work[r * n..(r + 1) * n];
            let mut acc = x[i];
            for &j in &self.symbolic.fill_cols[r] {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
        Ok(())
    }

    /// Determinant of the assembled matrix (product of the U diagonal times
    /// the permutation sign). Matches [`crate::LuDecomposition::determinant`]
    /// bit for bit on the same input.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`SparseLu::factorize`].
    pub fn determinant(&self) -> f64 {
        assert!(self.factored, "determinant requires factorized state");
        let n = self.symbolic.n;
        let mut det = self.permutation_sign;
        for i in 0..n {
            det *= self.work[self.row_at[i] as usize * n + i];
        }
        det
    }
}

/// Maximum number of lanes a [`LockstepLu`] can advance in lockstep. Eight
/// lanes saturate the division/transcendental latency-hiding this kernel is
/// built for while keeping the per-step lane accumulators in registers.
pub const MAX_LANES: usize = 8;

/// Multi-sample lockstep sparse LU: `L` independent factorizations advanced
/// through **one** shared [`SymbolicLu`] plan and **one** recorded
/// [`EliminationProgram`].
///
/// All lanes share the netlist topology, so the symbolic plan, the recorded
/// slot schedule and the pivot-scan windows are identical across lanes; only
/// the numeric values differ. The factor workspace is lane-strided
/// (`work[slot * lanes + lane]`), so each recorded operation is applied to
/// all lanes back-to-back — the divisions and dependent update chains of
/// different lanes overlap in the pipeline instead of serializing, which is
/// where the speedup over running [`SparseLu`] per sample comes from.
///
/// # Per-lane bit-identity
///
/// Each lane performs *exactly* the scalar kernel's arithmetic in the scalar
/// kernel's order: the same pivot scans, the same multiplier divisions, the
/// same structural-zero skips (`multiplier != 0.0`), the same substitution
/// order. Lanes are arithmetically independent — no value ever crosses a
/// lane boundary — so every lane's factors, singularity verdicts and
/// solutions are bit-identical to a [`SparseLu`] fed the same values
/// (asserted by this module's tests and the circuit-level lockstep goldens).
///
/// When a lane's pivot choice deviates from the recorded program (its values
/// moved enough to change a pivot), only that lane leaves the program: it
/// finishes elimination and solves through the generic (non-recorded) path
/// with its own row permutation, while the remaining lanes keep replaying.
/// A singular lane is likewise marked failed individually and frozen without
/// disturbing its neighbours.
#[derive(Debug, Clone)]
pub struct LockstepLu {
    symbolic: SymbolicLu,
    lanes: usize,
    /// Lane-strided factor workspace: value of `(row, col)` for `lane` lives
    /// at `(row * n + col) * lanes + lane`.
    work: Vec<f64>,
    /// Shared permutation walk of the recorded program (all replaying lanes
    /// pivot identically by definition).
    row_at: Vec<u32>,
    /// Per-lane permutation for lanes that left the program (`lanes × n`).
    lane_row_at: Vec<u32>,
    /// Per-lane singularity scale (same 4-chain max fold as the scalar kernel).
    scale: Vec<f64>,
    /// Per-lane outcome of the last `factorize`; `None` = success.
    lane_status: Vec<Option<LinalgError>>,
    /// Lanes whose pivot sequence matched the recorded program end to end.
    on_program: Vec<bool>,
    factored: Vec<bool>,
    /// Scratch mask for the generic per-lane elimination paths.
    upper: Vec<u64>,
    program: EliminationProgram,
    has_program: bool,
}

/// Copies the `L` contiguous lane values at `base` into a fixed-size array.
///
/// The const length lets every caller's per-lane loop fully unroll, which is
/// what turns the lockstep inner loops into straight-line vector code — the
/// dynamic-`lanes` loops they replace defeated both unrolling and
/// vectorization and measured *slower* per lane than the scalar kernel.
#[inline]
fn lane_group<const L: usize>(values: &[f64], base: usize) -> [f64; L] {
    let mut out = [0.0; L];
    out.copy_from_slice(&values[base..base + L]);
    out
}

/// Monomorphizes a lockstep method over every legal lane count so the inner
/// per-lane loops have a compile-time trip count.
macro_rules! lane_dispatch {
    ($self:ident, $method:ident, $($arg:expr),*) => {
        match $self.lanes {
            1 => $self.$method::<1>($($arg),*),
            2 => $self.$method::<2>($($arg),*),
            3 => $self.$method::<3>($($arg),*),
            4 => $self.$method::<4>($($arg),*),
            5 => $self.$method::<5>($($arg),*),
            6 => $self.$method::<6>($($arg),*),
            7 => $self.$method::<7>($($arg),*),
            8 => $self.$method::<8>($($arg),*),
            // Unreachable: the constructor asserts 1..=MAX_LANES.
            _ => unreachable!("lane count bounded by MAX_LANES"),
        }
    };
}

impl LockstepLu {
    /// Creates a lockstep workspace for `lanes` samples over `symbolic`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_LANES`].
    pub fn new(symbolic: SymbolicLu, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        let n = symbolic.n();
        let words = symbolic.words_per_row;
        LockstepLu {
            symbolic,
            lanes,
            work: vec![0.0; n * n * lanes],
            row_at: (0..n as u32).collect(),
            lane_row_at: vec![0; lanes * n],
            scale: vec![1.0; lanes],
            lane_status: vec![None; lanes],
            on_program: vec![false; lanes],
            factored: vec![false; lanes],
            upper: vec![0u64; words],
            program: EliminationProgram::default(),
            has_program: false,
        }
    }

    /// The symbolic plan backing this workspace.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.symbolic
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.symbolic.n
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Resets every fill-pattern slot of every lane to `+0.0`.
    /// gis-analyze: no_alloc
    pub fn clear(&mut self) {
        let lanes = self.lanes;
        for &slot in &self.symbolic.fill_slots {
            let base = slot as usize * lanes;
            for v in &mut self.work[base..base + lanes] {
                *v = 0.0;
            }
        }
        for f in &mut self.factored {
            *f = false;
        }
    }

    /// Flat slot handle of `(row, col)`, shared by all lanes (same contract
    /// as [`SparseLu::slot`]).
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is outside the assembly pattern.
    pub fn slot(&self, row: usize, col: usize) -> u32 {
        assert!(
            self.symbolic.in_stamp(row, col),
            "slot ({row}, {col}) is outside the analyzed pattern"
        );
        (row * self.symbolic.n + col) as u32
    }

    /// Adds `value` at `(row, col)` of `lane`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(row, col)` is outside the assembly
    /// pattern (same contract as [`SparseLu::add_at`]).
    #[inline]
    /// gis-analyze: no_alloc
    pub fn add_at(&mut self, row: usize, col: usize, lane: usize, value: f64) {
        debug_assert!(
            self.symbolic.in_stamp(row, col),
            "stamp at ({row}, {col}) is outside the analyzed pattern"
        );
        self.work[(row * self.symbolic.n + col) * self.lanes + lane] += value;
    }

    /// Adds `value` at a slot previously obtained from [`LockstepLu::slot`],
    /// for `lane`.
    #[inline]
    /// gis-analyze: no_alloc
    pub fn add_to_slot(&mut self, slot: u32, lane: usize, value: f64) {
        self.work[slot as usize * self.lanes + lane] += value;
    }

    /// Adds `values[lane]` at `slot` for every lane in one lane-group
    /// operation — the batched counterpart of [`LockstepLu::add_to_slot`].
    /// Per lane this is the identical single `+=`; the group form exists so
    /// the stamp replay compiles to lane-wide vector adds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `L` differs from the lane count.
    #[inline]
    /// gis-analyze: no_alloc
    pub fn add_group_to_slot<const L: usize>(&mut self, slot: u32, values: [f64; L]) {
        debug_assert_eq!(L, self.lanes, "lane-group width must match lane count");
        let base = slot as usize * L;
        let mut cur = lane_group::<L>(&self.work, base);
        for lane in 0..L {
            cur[lane] += values[lane];
        }
        self.work[base..base + L].copy_from_slice(&cur);
    }

    /// Outcome of the last [`LockstepLu::factorize`] for `lane`: `Ok` when
    /// the lane's factors are usable, the lane's own singularity error
    /// otherwise (bit-identical pivot/value to the scalar kernel's verdict).
    pub fn lane_result(&self, lane: usize) -> Result<()> {
        match &self.lane_status[lane] {
            None => Ok(()),
            Some(e) => Err(e.clone()),
        }
    }

    /// Factors every `active` lane in lockstep, reusing (and growing, on
    /// pivot deviation) the shared symbolic plan and recorded program.
    ///
    /// Per-lane failures (singular systems) are recorded in
    /// [`LockstepLu::lane_result`] and never disturb other lanes, so this
    /// method itself is infallible.
    ///
    /// # Panics
    ///
    /// Panics if `active.len() != lanes`.
    /// gis-analyze: no_alloc
    pub fn factorize(&mut self, active: &[bool]) {
        assert_eq!(active.len(), self.lanes, "active mask length");
        lane_dispatch!(self, factorize_const, active)
    }

    /// gis-analyze: no_alloc
    fn factorize_const<const L: usize>(&mut self, active: &[bool]) {
        let lanes = self.lanes;
        for (lane, &run) in active.iter().enumerate().take(lanes) {
            self.on_program[lane] = false;
            if run {
                self.lane_status[lane] = None;
                self.factored[lane] = false;
            }
        }

        // Per-lane singularity scale: the same four interleaved `f64::max`
        // chains over the stamp slots as the scalar kernel, walked once with
        // all lanes side by side (max is a pure selection, so any fold order
        // yields the identical value; the chains are mirrored anyway so the
        // comparison sequence matches).
        {
            let mut m0 = [0.0f64; L];
            let mut m1 = [0.0f64; L];
            let mut m2 = [0.0f64; L];
            let mut m3 = [0.0f64; L];
            let mut chunks = self.symbolic.stamp_slots.chunks_exact(4);
            for c in &mut chunks {
                let v0 = lane_group::<L>(&self.work, c[0] as usize * L);
                let v1 = lane_group::<L>(&self.work, c[1] as usize * L);
                let v2 = lane_group::<L>(&self.work, c[2] as usize * L);
                let v3 = lane_group::<L>(&self.work, c[3] as usize * L);
                for lane in 0..L {
                    m0[lane] = m0[lane].max(v0[lane].abs());
                    m1[lane] = m1[lane].max(v1[lane].abs());
                    m2[lane] = m2[lane].max(v2[lane].abs());
                    m3[lane] = m3[lane].max(v3[lane].abs());
                }
            }
            for &slot in chunks.remainder() {
                let v = lane_group::<L>(&self.work, slot as usize * L);
                for lane in 0..L {
                    m0[lane] = m0[lane].max(v[lane].abs());
                }
            }
            for lane in 0..L {
                if active[lane] {
                    self.scale[lane] = m0[lane].max(m1[lane]).max(m2[lane]).max(m3[lane]).max(1.0);
                }
            }
        }

        if self.symbolic.words_per_row != 1 {
            // Multi-word masks (n > 64): no recorded program exists on this
            // path in the scalar kernel either; run each lane generically.
            for (lane, &run) in active.iter().enumerate().take(lanes) {
                if !run {
                    continue;
                }
                for pos in 0..self.symbolic.n {
                    self.lane_row_at[lane * self.symbolic.n + pos] = pos as u32;
                }
                match self.eliminate_lane_general(lane, 0) {
                    Ok(()) => self.factored[lane] = true,
                    Err(e) => self.lane_status[lane] = Some(e),
                }
            }
            return;
        }

        if !self.has_program {
            // Cold start: the lowest active lane records the shared program
            // (performing its own elimination as it goes); the other lanes
            // run the generic path this once and replay from the next
            // factorization on.
            let Some(driver) = (0..lanes).find(|&l| active[l]) else {
                return;
            };
            for (pos, r) in self.row_at.iter_mut().enumerate() {
                *r = pos as u32;
            }
            self.program.clear();
            let outcome = self.record_from_lane(driver, 0);
            self.has_program = outcome.is_ok();
            match outcome {
                Ok(()) => {
                    self.factored[driver] = true;
                    self.on_program[driver] = true;
                }
                Err(e) => self.lane_status[driver] = Some(e),
            }
            for (lane, &run) in active.iter().enumerate().take(lanes).skip(driver + 1) {
                if !run {
                    continue;
                }
                for pos in 0..self.symbolic.n {
                    self.lane_row_at[lane * self.symbolic.n + pos] = pos as u32;
                }
                match self.eliminate_lane_generic(lane, 0) {
                    Ok(()) => self.factored[lane] = true,
                    Err(e) => self.lane_status[lane] = Some(e),
                }
            }
            return;
        }

        self.replay_lockstep::<L>(active);
    }

    /// Lockstep replay of the recorded program across all active lanes, with
    /// the scalar kernel's per-step pivot guard applied per lane: a lane
    /// whose scan disagrees with the recorded pivot leaves the program and
    /// finishes through the generic path; the rest keep replaying.
    ///
    /// Every inner loop runs over the const lane count, so the scan, the
    /// multiplier divisions, and the rank-1 updates all compile to lane-wide
    /// vector operations. Per lane the arithmetic and its order are exactly
    /// the scalar replay's — vector elementwise ops never mix lanes, and the
    /// structural-zero skip is a per-lane blend of "updated" vs "untouched",
    /// which is the identical value the branch produced.
    /// gis-analyze: no_alloc
    fn replay_lockstep<const L: usize>(&mut self, active: &[bool]) {
        let n = self.symbolic.n;
        for (pos, r) in self.row_at.iter_mut().enumerate() {
            *r = pos as u32;
        }
        self.on_program[..L].copy_from_slice(&active[..L]);
        let mut live = active.iter().filter(|&&a| a).count();
        let mut mult = [0.0f64; L];

        for k in 0..n {
            if live == 0 {
                break;
            }
            let scan_start = self.program.scan_off[k] as usize;
            let window = &self.program.scan_slots[scan_start..scan_start + (n - k)];
            // Lane-parallel pivot scan: one walk of the shared window; per
            // lane the identical strictly-greater comparison sequence as the
            // scalar replay. Off-program lanes are scanned too (their result
            // is ignored below) — cheaper than masking inside the hot loop.
            let mut pivot_value = lane_group::<L>(&self.work, window[0] as usize * L);
            for v in &mut pivot_value {
                *v = v.abs();
            }
            let mut rel = [0u32; L];
            for (i, &slot) in window.iter().enumerate().skip(1) {
                let vals = lane_group::<L>(&self.work, slot as usize * L);
                for lane in 0..L {
                    let v = vals[lane].abs();
                    if v > pivot_value[lane] {
                        pivot_value[lane] = v;
                        rel[lane] = i as u32;
                    }
                }
            }
            for lane in 0..L {
                if !self.on_program[lane] {
                    continue;
                }
                if pivot_value[lane] < SINGULARITY_TOLERANCE * self.scale[lane] {
                    // The scalar kernel resets its program here; the shared
                    // program stays (its prefix is still the right schedule
                    // for the surviving lanes) — value-equivalence is
                    // unaffected because the guard re-verifies every replay.
                    self.lane_status[lane] = Some(LinalgError::Singular {
                        pivot: k,
                        value: pivot_value[lane],
                    });
                    self.on_program[lane] = false;
                    live -= 1;
                } else if rel[lane] != self.program.expected_rel[k] {
                    // Pivot deviation: only this lane leaves the program.
                    // Its elimination history equals the recorded prefix, so
                    // the shared permutation state at step k seeds its
                    // private one and the generic path finishes from here.
                    for pos in 0..n {
                        self.lane_row_at[lane * n + pos] = self.row_at[pos];
                    }
                    self.on_program[lane] = false;
                    live -= 1;
                    match self.eliminate_lane_generic(lane, k) {
                        Ok(()) => self.factored[lane] = true,
                        Err(e) => self.lane_status[lane] = Some(e),
                    }
                }
            }
            if live == 0 {
                break;
            }
            let relk = self.program.expected_rel[k] as usize;
            if relk != 0 {
                self.row_at.swap(k, k + relk);
            }
            let pivot_slot = self.program.scan_slots[scan_start + relk] as usize;
            let pivot = lane_group::<L>(&self.work, pivot_slot * L);
            let mut on = [false; L];
            on.copy_from_slice(&self.on_program[..L]);

            // Lane-batched factor-op replay: one shared program decode, with
            // the multiplier divisions and rank-1 updates of all lanes
            // issued as single lane-wide vector operations.
            let mut cursor = self.program.factor_off[k] as usize;
            let ops = &self.program.factor_ops;
            let ncand = ops[cursor] as usize;
            cursor += 1;
            for _ in 0..ncand {
                let mbase = ops[cursor] as usize * L;
                let npairs = ops[cursor + 1] as usize;
                cursor += 2;
                let mrow = lane_group::<L>(&self.work, mbase);
                let mut stored = [0.0f64; L];
                for lane in 0..L {
                    // Off-program lanes keep their values and get a zero
                    // multiplier (their elimination already finished); the
                    // wasted division is cheaper than a branch per lane.
                    let m = mrow[lane] / pivot[lane];
                    mult[lane] = if on[lane] { m } else { 0.0 };
                    stored[lane] = if on[lane] { m } else { mrow[lane] };
                }
                self.work[mbase..mbase + L].copy_from_slice(&stored);
                for _ in 0..npairs {
                    let dst = ops[cursor] as usize * L;
                    let src = ops[cursor + 1] as usize * L;
                    cursor += 2;
                    let s = lane_group::<L>(&self.work, src);
                    let mut d = lane_group::<L>(&self.work, dst);
                    for lane in 0..L {
                        // gis-analyze: allow(float-eq, per-lane structural-zero skip mirrors the scalar replay exactly)
                        if mult[lane] != 0.0 {
                            d[lane] -= mult[lane] * s[lane];
                        }
                    }
                    self.work[dst..dst + L].copy_from_slice(&d);
                }
            }
        }
        for lane in 0..L {
            if self.on_program[lane] {
                self.factored[lane] = true;
            }
        }
    }

    /// Records the shared elimination program while performing `lane`'s
    /// elimination — the lane-strided mirror of [`SparseLu::record_from`]
    /// (single-word masks), using the *shared* `row_at` walk.
    fn record_from_lane(&mut self, lane: usize, k0: usize) -> Result<()> {
        let n = self.symbolic.n;
        let lanes = self.lanes;
        for k in k0..n {
            self.program
                .scan_off
                .push(self.program.scan_slots.len() as u32);
            let first_slot = (self.row_at[k] as usize * n + k) as u32;
            self.program.scan_slots.push(first_slot);
            let mut pivot_pos = k;
            let mut pivot_value = self.work[first_slot as usize * lanes + lane].abs();
            for pos in (k + 1)..n {
                let slot = (self.row_at[pos] as usize * n + k) as u32;
                self.program.scan_slots.push(slot);
                let v = self.work[slot as usize * lanes + lane].abs();
                if v > pivot_value {
                    pivot_value = v;
                    pivot_pos = pos;
                }
            }
            self.program.expected_rel.push((pivot_pos - k) as u32);
            if pivot_value < SINGULARITY_TOLERANCE * self.scale[lane] {
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if pivot_pos != k {
                self.row_at.swap(k, pivot_pos);
            }
            let pr = self.row_at[k] as usize;
            let pr_off = pr * n;
            let pivot = self.work[(pr_off + k) * lanes + lane];
            let upper: u64 = self.symbolic.fill_mask[pr] & !(u64::MAX >> (63 - k));
            let col_k_bit: u64 = 1u64 << k;

            self.program
                .factor_off
                .push(self.program.factor_ops.len() as u32);
            let ncand_index = self.program.factor_ops.len();
            self.program.factor_ops.push(0);
            let mut ncand = 0u32;
            for pos in (k + 1)..n {
                let r = self.row_at[pos] as usize;
                if self.symbolic.fill_mask[r] & col_k_bit == 0 {
                    continue;
                }
                ncand += 1;
                let r_off = r * n;
                let multiplier = self.work[(r_off + k) * lanes + lane] / pivot;
                self.work[(r_off + k) * lanes + lane] = multiplier;
                self.program.factor_ops.push((r_off + k) as u32);
                let npairs_index = self.program.factor_ops.len();
                self.program.factor_ops.push(0);
                if upper & !self.symbolic.fill_mask[r] != 0 {
                    self.upper[0] = upper;
                    let upper_buf = std::mem::take(&mut self.upper);
                    self.symbolic.absorb(r, &upper_buf);
                    self.upper = upper_buf;
                }
                let mut npairs = 0u32;
                // gis-analyze: allow(float-eq, structural-zero skip keeps the lane bit-identical to the scalar kernel)
                if multiplier != 0.0 {
                    for &j in &self.symbolic.fill_cols[pr] {
                        let j = j as usize;
                        if j <= k {
                            continue;
                        }
                        let delta = multiplier * self.work[(pr_off + j) * lanes + lane];
                        self.work[(r_off + j) * lanes + lane] -= delta;
                        self.program.factor_ops.push((r_off + j) as u32);
                        self.program.factor_ops.push((pr_off + j) as u32);
                        npairs += 1;
                    }
                } else {
                    for &j in &self.symbolic.fill_cols[pr] {
                        let j = j as usize;
                        if j <= k {
                            continue;
                        }
                        self.program.factor_ops.push((r_off + j) as u32);
                        self.program.factor_ops.push((pr_off + j) as u32);
                        npairs += 1;
                    }
                }
                self.program.factor_ops[npairs_index] = npairs;
            }
            self.program.factor_ops[ncand_index] = ncand;
        }

        // Solve schedule of this pivot sequence (shared by replaying lanes).
        self.program.perm.clear();
        self.program.perm.extend_from_slice(&self.row_at);
        self.program.fwd_ops.clear();
        for i in 1..n {
            let r = self.row_at[i] as usize;
            let cnt_index = self.program.fwd_ops.len();
            self.program.fwd_ops.push(0);
            let mut cnt = 0u32;
            for &j in &self.symbolic.fill_cols[r] {
                let j = j as usize;
                if j >= i {
                    break;
                }
                self.program.fwd_ops.push((r * n + j) as u32);
                self.program.fwd_ops.push(j as u32);
                cnt += 1;
            }
            self.program.fwd_ops[cnt_index] = cnt;
        }
        self.program.bwd_ops.clear();
        for i in (0..n).rev() {
            let r = self.row_at[i] as usize;
            self.program.bwd_ops.push((r * n + i) as u32);
            let cnt_index = self.program.bwd_ops.len();
            self.program.bwd_ops.push(0);
            let mut cnt = 0u32;
            for &j in &self.symbolic.fill_cols[r] {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                self.program.bwd_ops.push((r * n + j) as u32);
                self.program.bwd_ops.push(j as u32);
                cnt += 1;
            }
            self.program.bwd_ops[cnt_index] = cnt;
        }
        Ok(())
    }

    /// Generic single-word elimination of one lane from step `k0`, using the
    /// lane's private permutation — the lane-strided mirror of the scalar
    /// recording path's arithmetic (including the structural absorb), minus
    /// the recording. Values are bit-identical to the scalar kernel because
    /// re-recording and not recording perform the same operations.
    /// gis-analyze: no_alloc
    fn eliminate_lane_generic(&mut self, lane: usize, k0: usize) -> Result<()> {
        let n = self.symbolic.n;
        let lanes = self.lanes;
        let ra = lane * n;
        for k in k0..n {
            let mut pivot_pos = k;
            let mut pivot_value =
                self.work[(self.lane_row_at[ra + k] as usize * n + k) * lanes + lane].abs();
            for pos in (k + 1)..n {
                let v =
                    self.work[(self.lane_row_at[ra + pos] as usize * n + k) * lanes + lane].abs();
                if v > pivot_value {
                    pivot_value = v;
                    pivot_pos = pos;
                }
            }
            if pivot_value < SINGULARITY_TOLERANCE * self.scale[lane] {
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if pivot_pos != k {
                self.lane_row_at.swap(ra + k, ra + pivot_pos);
            }
            let pr = self.lane_row_at[ra + k] as usize;
            let pr_off = pr * n;
            let pivot = self.work[(pr_off + k) * lanes + lane];
            let upper: u64 = self.symbolic.fill_mask[pr] & !(u64::MAX >> (63 - k));
            let col_k_bit: u64 = 1u64 << k;
            for pos in (k + 1)..n {
                let r = self.lane_row_at[ra + pos] as usize;
                if self.symbolic.fill_mask[r] & col_k_bit == 0 {
                    continue;
                }
                let r_off = r * n;
                let multiplier = self.work[(r_off + k) * lanes + lane] / pivot;
                self.work[(r_off + k) * lanes + lane] = multiplier;
                if upper & !self.symbolic.fill_mask[r] != 0 {
                    // Structural growth, mirroring the recording path: the
                    // new slots hold exact zeros for every other lane, so
                    // the superset pattern stays bit-exact for them.
                    self.upper[0] = upper;
                    let upper_buf = std::mem::take(&mut self.upper);
                    self.symbolic.absorb(r, &upper_buf);
                    self.upper = upper_buf;
                }
                // gis-analyze: allow(float-eq, structural-zero skip keeps the lane bit-identical to the scalar kernel)
                if multiplier != 0.0 {
                    for &j in &self.symbolic.fill_cols[pr] {
                        let j = j as usize;
                        if j <= k {
                            continue;
                        }
                        let delta = multiplier * self.work[(pr_off + j) * lanes + lane];
                        self.work[(r_off + j) * lanes + lane] -= delta;
                    }
                }
            }
        }
        Ok(())
    }

    /// Generic multi-word (`n > 64`) elimination of one lane — the
    /// lane-strided mirror of [`SparseLu::factorize_general`].
    fn eliminate_lane_general(&mut self, lane: usize, k0: usize) -> Result<()> {
        let n = self.symbolic.n;
        let lanes = self.lanes;
        let ra = lane * n;
        for k in k0..n {
            let mut pivot_pos = k;
            let mut pivot_value =
                self.work[(self.lane_row_at[ra + k] as usize * n + k) * lanes + lane].abs();
            for pos in (k + 1)..n {
                let v =
                    self.work[(self.lane_row_at[ra + pos] as usize * n + k) * lanes + lane].abs();
                if v > pivot_value {
                    pivot_value = v;
                    pivot_pos = pos;
                }
            }
            if pivot_value < SINGULARITY_TOLERANCE * self.scale[lane] {
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if pivot_pos != k {
                self.lane_row_at.swap(ra + k, ra + pivot_pos);
            }
            let pr = self.lane_row_at[ra + k] as usize;
            let pivot = self.work[(pr * n + k) * lanes + lane];

            self.upper.copy_from_slice(self.symbolic.fill_row_mask(pr));
            for (word_index, word) in self.upper.iter_mut().enumerate() {
                let base = word_index * 64;
                if base + 63 <= k {
                    *word = 0;
                } else if base <= k {
                    let keep_from = k - base + 1; // 1..=63
                    *word &= !((1u64 << keep_from) - 1);
                }
            }

            for pos in (k + 1)..n {
                let r = self.lane_row_at[ra + pos] as usize;
                if !bit_is_set(self.symbolic.fill_row_mask(r), k) {
                    continue;
                }
                let multiplier = self.work[(r * n + k) * lanes + lane] / pivot;
                self.work[(r * n + k) * lanes + lane] = multiplier;
                // gis-analyze: allow(float-eq, structural-zero skip keeps the lane bit-identical to the scalar kernel)
                if multiplier != 0.0 {
                    let upper_buf = std::mem::take(&mut self.upper);
                    self.symbolic.absorb(r, &upper_buf);
                    self.upper = upper_buf;
                    let pivot_cols = &self.symbolic.fill_cols[pr];
                    let start = pivot_cols.partition_point(|&c| (c as usize) <= k);
                    for &j in &pivot_cols[start..] {
                        let j = j as usize;
                        let delta = multiplier * self.work[(pr * n + j) * lanes + lane];
                        self.work[(r * n + j) * lanes + lane] -= delta;
                    }
                }
            }
        }
        Ok(())
    }

    /// Solves `A_lane x_lane = b_lane` for every `active`, successfully
    /// factored lane. `b` and `x` are lane-strided (`value[i * lanes +
    /// lane]`). Lanes replaying the shared program substitute in lockstep
    /// (hiding the back-substitution division latency across lanes); lanes
    /// that left the program substitute generically through their private
    /// permutation. Both paths perform the scalar kernel's arithmetic in the
    /// scalar kernel's order, so every lane's solution is bit-identical to
    /// [`SparseLu::solve`].
    ///
    /// Lanes whose factorization failed are skipped (their `x` entries are
    /// left untouched); callers gate on [`LockstepLu::lane_result`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b`/`x` are not
    /// `n × lanes` long.
    /// gis-analyze: no_alloc
    pub fn solve(&self, b: &[f64], x: &mut [f64], active: &[bool]) -> Result<()> {
        let n = self.symbolic.n;
        let lanes = self.lanes;
        if b.len() != n * lanes || x.len() != n * lanes {
            return Err(LinalgError::DimensionMismatch {
                operation: "lockstep_lu_solve",
                left: (n, lanes),
                right: (b.len(), 1),
            });
        }
        // Lanes sharing the recorded program, substituted in lockstep.
        let mut prog_lanes = [0usize; MAX_LANES];
        let mut np = 0usize;
        for (lane, &run) in active.iter().enumerate().take(lanes) {
            if run && self.factored[lane] && self.on_program[lane] && self.has_program {
                prog_lanes[np] = lane;
                np += 1;
            }
        }
        if np == lanes {
            // Full-width hot path: every lane replays the program, so the
            // substitution runs on whole contiguous lane groups with a const
            // trip count (vectorizes; per-lane order unchanged).
            lane_dispatch!(self, solve_programmed_full, b, x);
            return Ok(());
        }
        if np > 0 {
            let mut acc = [0.0f64; MAX_LANES];
            for (pos, &r) in self.program.perm.iter().enumerate() {
                for &lane in &prog_lanes[..np] {
                    x[pos * lanes + lane] = b[r as usize * lanes + lane];
                }
            }
            let mut cursor = 0usize;
            let ops = &self.program.fwd_ops;
            for xi in 1..n {
                let cnt = ops[cursor] as usize;
                cursor += 1;
                for (a, &lane) in acc.iter_mut().zip(&prog_lanes[..np]) {
                    *a = x[xi * lanes + lane];
                }
                for _ in 0..cnt {
                    let slot = ops[cursor] as usize * lanes;
                    let j = ops[cursor + 1] as usize * lanes;
                    cursor += 2;
                    for (a, &lane) in acc.iter_mut().zip(&prog_lanes[..np]) {
                        *a -= self.work[slot + lane] * x[j + lane];
                    }
                }
                for (a, &lane) in acc.iter().zip(&prog_lanes[..np]) {
                    x[xi * lanes + lane] = *a;
                }
            }
            let mut cursor = 0usize;
            let ops = &self.program.bwd_ops;
            for xi in (0..n).rev() {
                let diag = ops[cursor] as usize * lanes;
                let cnt = ops[cursor + 1] as usize;
                cursor += 2;
                for (a, &lane) in acc.iter_mut().zip(&prog_lanes[..np]) {
                    *a = x[xi * lanes + lane];
                }
                for _ in 0..cnt {
                    let slot = ops[cursor] as usize * lanes;
                    let j = ops[cursor + 1] as usize * lanes;
                    cursor += 2;
                    for (a, &lane) in acc.iter_mut().zip(&prog_lanes[..np]) {
                        *a -= self.work[slot + lane] * x[j + lane];
                    }
                }
                // The per-lane divisions issue back-to-back and overlap.
                for (a, &lane) in acc.iter().zip(&prog_lanes[..np]) {
                    x[xi * lanes + lane] = *a / self.work[diag + lane];
                }
            }
        }
        // Off-program lanes: generic substitution through the private
        // permutation (identical arithmetic order; see `SparseLu::solve`).
        for lane in 0..lanes {
            if !active[lane] || !self.factored[lane] || (self.on_program[lane] && self.has_program)
            {
                continue;
            }
            let ra = lane * n;
            for pos in 0..n {
                x[pos * lanes + lane] = b[self.lane_row_at[ra + pos] as usize * lanes + lane];
            }
            for i in 1..n {
                let r = self.lane_row_at[ra + i] as usize;
                let mut acc = x[i * lanes + lane];
                for &j in &self.symbolic.fill_cols[r] {
                    let j = j as usize;
                    if j >= i {
                        break;
                    }
                    acc -= self.work[(r * n + j) * lanes + lane] * x[j * lanes + lane];
                }
                x[i * lanes + lane] = acc;
            }
            for i in (0..n).rev() {
                let r = self.lane_row_at[ra + i] as usize;
                let mut acc = x[i * lanes + lane];
                for &j in &self.symbolic.fill_cols[r] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    acc -= self.work[(r * n + j) * lanes + lane] * x[j * lanes + lane];
                }
                x[i * lanes + lane] = acc / self.work[(r * n + i) * lanes + lane];
            }
        }
        Ok(())
    }

    /// Forward/backward substitution of the recorded program with every lane
    /// participating: whole lane groups, const trip counts, bit-identical
    /// per-lane arithmetic (see [`LockstepLu::solve`]).
    /// gis-analyze: no_alloc
    fn solve_programmed_full<const L: usize>(&self, b: &[f64], x: &mut [f64]) {
        let n = self.symbolic.n;
        for (pos, &r) in self.program.perm.iter().enumerate() {
            let src = r as usize * L;
            x[pos * L..pos * L + L].copy_from_slice(&b[src..src + L]);
        }
        let mut cursor = 0usize;
        let ops = &self.program.fwd_ops;
        for xi in 1..n {
            let cnt = ops[cursor] as usize;
            cursor += 1;
            let mut acc = lane_group::<L>(x, xi * L);
            for _ in 0..cnt {
                let slot = ops[cursor] as usize * L;
                let j = ops[cursor + 1] as usize * L;
                cursor += 2;
                let w = lane_group::<L>(&self.work, slot);
                let xv = lane_group::<L>(x, j);
                for lane in 0..L {
                    acc[lane] -= w[lane] * xv[lane];
                }
            }
            x[xi * L..xi * L + L].copy_from_slice(&acc);
        }
        let mut cursor = 0usize;
        let ops = &self.program.bwd_ops;
        for xi in (0..n).rev() {
            let diag = ops[cursor] as usize * L;
            let cnt = ops[cursor + 1] as usize;
            cursor += 2;
            let mut acc = lane_group::<L>(x, xi * L);
            for _ in 0..cnt {
                let slot = ops[cursor] as usize * L;
                let j = ops[cursor + 1] as usize * L;
                cursor += 2;
                let w = lane_group::<L>(&self.work, slot);
                let xv = lane_group::<L>(x, j);
                for lane in 0..L {
                    acc[lane] -= w[lane] * xv[lane];
                }
            }
            let d = lane_group::<L>(&self.work, diag);
            for lane in 0..L {
                acc[lane] /= d[lane];
            }
            x[xi * L..xi * L + L].copy_from_slice(&acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LuDecomposition, Matrix, Vector};

    /// Deterministic pseudo-random value stream (xorshift).
    struct Rand(u64);
    impl Rand {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 as f64 / u64::MAX as f64) * 2.0 - 1.0
        }
    }

    /// Builds a random pattern with guaranteed diagonal and density `p`,
    /// values diagonally dominated for solvability.
    fn random_system(n: usize, p: f64, seed: u64) -> (SparsityPattern, Matrix) {
        let mut rng = Rand(seed.max(1));
        let mut builder = PatternBuilder::new(n);
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let keep = i == j || (rng.next() + 1.0) / 2.0 < p;
                if keep {
                    builder.insert(i, j);
                    let v = rng.next() + if i == j { n as f64 } else { 0.0 };
                    dense[(i, j)] = v;
                }
            }
        }
        (builder.build(), dense)
    }

    fn stamp_from_dense(lu: &mut SparseLu, pattern: &SparsityPattern, dense: &Matrix) {
        lu.clear();
        for r in 0..pattern.n() {
            for &c in pattern.row_cols(r) {
                lu.add_at(r, c as usize, dense[(r, c as usize)]);
            }
        }
    }

    fn sparse_from_dense(pattern: &SparsityPattern, dense: &Matrix) -> SparseLu {
        let mut lu = SparseLu::new(SymbolicLu::analyze(pattern));
        stamp_from_dense(&mut lu, pattern, dense);
        lu
    }

    fn assert_solutions_bit_identical(dense: &Matrix, sparse: &SparseLu, b: &Vector) {
        let dense_lu = LuDecomposition::new(dense).unwrap();
        let x_dense = dense_lu.solve(b).unwrap();
        let mut x_sparse = vec![0.0; dense.rows()];
        sparse.solve(b.as_slice(), &mut x_sparse).unwrap();
        for i in 0..dense.rows() {
            assert_eq!(
                x_dense[i].to_bits(),
                x_sparse[i].to_bits(),
                "solution mismatch at {i}"
            );
        }
        assert_eq!(
            dense_lu.determinant().to_bits(),
            sparse.determinant().to_bits()
        );
    }

    #[test]
    fn pattern_builder_dedups_and_sorts() {
        let mut b = PatternBuilder::new(3);
        b.insert(0, 2);
        b.insert(0, 0);
        b.insert(0, 2);
        b.insert(2, 1);
        let p = b.build();
        assert_eq!(p.n(), 3);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.row_cols(0), &[0, 2]);
        assert_eq!(p.row_cols(1), &[] as &[u32]);
        assert!(p.contains(2, 1));
        assert!(!p.contains(1, 1));
        assert!(!p.contains(5, 0));
    }

    #[test]
    fn symbolic_fill_is_superset_of_stamp() {
        let (pattern, _) = random_system(12, 0.3, 7);
        let sym = SymbolicLu::analyze(&pattern);
        assert!(sym.fill_nnz() >= sym.stamp_nnz());
        assert!(sym.fill_fraction() <= 1.0);
        for r in 0..pattern.n() {
            for &c in pattern.row_cols(r) {
                assert!(bit_is_set(sym.fill_row_mask(r), c as usize));
            }
        }
        assert_eq!(sym.stamp_pattern(), &pattern);
    }

    #[test]
    fn tridiagonal_predicts_no_fill() {
        let n = 16;
        let mut b = PatternBuilder::new(n);
        for i in 0..n {
            b.insert(i, i);
            if i > 0 {
                b.insert(i, i - 1);
                b.insert(i - 1, i);
            }
        }
        let pattern = b.build();
        let sym = SymbolicLu::analyze(&pattern);
        assert_eq!(
            sym.fill_nnz(),
            sym.stamp_nnz(),
            "diagonal-pivot elimination of a tridiagonal matrix has no fill"
        );
    }

    #[test]
    fn matches_dense_lu_bit_for_bit() {
        for (n, p, seed) in [
            (1, 1.0, 3),
            (4, 0.4, 11),
            (9, 0.3, 42),
            (16, 0.2, 5),
            (25, 0.5, 8),
            (70, 0.15, 21), // multi-word bitmask rows
        ] {
            let (pattern, dense) = random_system(n, p, seed);
            let mut sparse = sparse_from_dense(&pattern, &dense);
            sparse.factorize().unwrap();
            let b: Vector = (0..n).map(|i| (i as f64).cos() * 2.0 + 0.5).collect();
            assert_solutions_bit_identical(&dense, &sparse, &b);
        }
    }

    #[test]
    fn pivoting_deviation_grows_the_plan_and_stays_exact() {
        // MNA voltage-source shape: zero diagonal in the last row forces
        // pivoting away from the diagonal order the symbolic pass predicted.
        let mut b = PatternBuilder::new(3);
        for (i, j) in [(0, 0), (0, 2), (1, 1), (1, 2), (2, 0), (2, 1)] {
            b.insert(i, j);
        }
        let pattern = b.build();
        let dense =
            Matrix::from_rows(&[&[1e-3, 0.0, 1.0], &[0.0, 2e-3, -1.0], &[1.0, -1.0, 0.0]]).unwrap();
        let mut sparse = sparse_from_dense(&pattern, &dense);
        let fill_before = sparse.symbolic().fill_nnz();
        sparse.factorize().unwrap();
        let fill_after = sparse.symbolic().fill_nnz();
        assert!(fill_after >= fill_before);
        let rhs = Vector::from_slice(&[1e-3, 0.0, 1.0]);
        assert_solutions_bit_identical(&dense, &sparse, &rhs);

        // Refactorization on the warmed plan: no further growth, same bits.
        stamp_from_dense(&mut sparse, &pattern, &dense);
        sparse.factorize().unwrap();
        assert_eq!(sparse.symbolic().fill_nnz(), fill_after);
        assert_solutions_bit_identical(&dense, &sparse, &rhs);
    }

    #[test]
    fn replay_guard_catches_pivot_deviation() {
        // First factorization records a pivot sequence; the second uses
        // values that move the largest column entry to a different row, so
        // the replay must detect the deviation and re-record — staying
        // bit-identical to the dense kernel throughout.
        let mut b = PatternBuilder::new(3);
        for i in 0..3 {
            for j in 0..3 {
                b.insert(i, j);
            }
        }
        let pattern = b.build();
        let first =
            Matrix::from_rows(&[&[9.0, 1.0, 2.0], &[1.0, 7.0, 0.5], &[2.0, 0.5, 8.0]]).unwrap();
        let flipped = Matrix::from_rows(&[
            &[1.0, 1.0, 2.0],
            &[9.0, 7.0, 0.5], // column 0 now pivots to row 1
            &[2.0, 0.5, 8.0],
        ])
        .unwrap();
        let rhs = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let mut sparse = SparseLu::new(SymbolicLu::analyze(&pattern));
        for matrix in [&first, &flipped, &first, &flipped] {
            stamp_from_dense(&mut sparse, &pattern, matrix);
            sparse.factorize().unwrap();
            assert_solutions_bit_identical(matrix, &sparse, &rhs);
        }
    }

    #[test]
    fn refactorization_reuses_plan() {
        let (pattern, dense) = random_system(10, 0.35, 17);
        let mut sparse = sparse_from_dense(&pattern, &dense);
        sparse.factorize().unwrap();
        let det_first = sparse.determinant();

        // New values, same pattern: clear + stamp + refactor.
        let scaled = dense.scaled(3.0);
        stamp_from_dense(&mut sparse, &pattern, &scaled);
        sparse.factorize().unwrap();
        let dense_lu = LuDecomposition::new(&scaled).unwrap();
        assert_eq!(
            dense_lu.determinant().to_bits(),
            sparse.determinant().to_bits()
        );
        assert_ne!(det_first.to_bits(), sparse.determinant().to_bits());

        // And back to the original values: bit-identical to the first pass.
        stamp_from_dense(&mut sparse, &pattern, &dense);
        sparse.factorize().unwrap();
        assert_eq!(det_first.to_bits(), sparse.determinant().to_bits());
    }

    #[test]
    fn singularity_detected_like_dense() {
        let mut b = PatternBuilder::new(2);
        for (i, j) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            b.insert(i, j);
        }
        let pattern = b.build();
        let dense = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let mut sparse = sparse_from_dense(&pattern, &dense);
        let dense_err = LuDecomposition::new(&dense).unwrap_err();
        let sparse_err = sparse.factorize().unwrap_err();
        match (dense_err, sparse_err) {
            (
                LinalgError::Singular {
                    pivot: pd,
                    value: vd,
                },
                LinalgError::Singular {
                    pivot: ps,
                    value: vs,
                },
            ) => {
                assert_eq!(pd, ps);
                assert_eq!(vd.to_bits(), vs.to_bits());
            }
            other => panic!("expected matching singularity errors, got {other:?}"),
        }
    }

    #[test]
    fn solve_rejects_bad_lengths_and_unfactored_state() {
        let (pattern, dense) = random_system(4, 0.5, 23);
        let mut sparse = sparse_from_dense(&pattern, &dense);
        let mut x = [0.0; 4];
        assert!(matches!(
            sparse.solve(&[0.0; 4], &mut x),
            Err(LinalgError::InvalidArgument(_))
        ));
        sparse.factorize().unwrap();
        assert!(sparse.solve(&[0.0; 3], &mut x).is_err());
        let mut short = [0.0; 3];
        assert!(sparse.solve(&[0.0; 4], &mut short).is_err());
        assert!(sparse.solve(&[0.0; 4], &mut x).is_ok());
        // clear() invalidates the factors.
        sparse.clear();
        assert!(sparse.solve(&[0.0; 4], &mut x).is_err());
    }

    /// Stamps `dense` into `lane` of a lockstep workspace.
    fn stamp_lane(lu: &mut LockstepLu, pattern: &SparsityPattern, dense: &Matrix, lane: usize) {
        for r in 0..pattern.n() {
            for &c in pattern.row_cols(r) {
                lu.add_at(r, c as usize, lane, dense[(r, c as usize)]);
            }
        }
    }

    /// Factors + solves every lane of `lockstep` against a fresh scalar
    /// kernel per lane and asserts bit-identical solutions.
    fn assert_lockstep_matches_scalar(
        pattern: &SparsityPattern,
        matrices: &[Matrix],
        lockstep: &mut LockstepLu,
        b: &[f64],
    ) {
        let n = pattern.n();
        let lanes = lockstep.lanes();
        let active: Vec<bool> = (0..lanes).map(|l| l < matrices.len()).collect();
        lockstep.clear();
        for (lane, m) in matrices.iter().enumerate() {
            stamp_lane(lockstep, pattern, m, lane);
        }
        lockstep.factorize(&active);
        let mut rhs = vec![0.0; n * lanes];
        for i in 0..n {
            for lane in 0..matrices.len() {
                rhs[i * lanes + lane] = b[i];
            }
        }
        let mut x = vec![0.0; n * lanes];
        lockstep.solve(&rhs, &mut x, &active).unwrap();
        for (lane, m) in matrices.iter().enumerate() {
            let mut scalar = sparse_from_dense(pattern, m);
            match scalar.factorize() {
                Ok(()) => {
                    lockstep.lane_result(lane).unwrap();
                    let mut xs = vec![0.0; n];
                    scalar.solve(b, &mut xs).unwrap();
                    for i in 0..n {
                        assert_eq!(
                            xs[i].to_bits(),
                            x[i * lanes + lane].to_bits(),
                            "lane {lane} differs from scalar at {i}"
                        );
                    }
                }
                Err(LinalgError::Singular { pivot, value }) => {
                    match lockstep.lane_result(lane).unwrap_err() {
                        LinalgError::Singular {
                            pivot: pl,
                            value: vl,
                        } => {
                            assert_eq!(pivot, pl);
                            assert_eq!(value.to_bits(), vl.to_bits());
                        }
                        other => panic!("lane {lane}: expected Singular, got {other:?}"),
                    }
                }
                Err(other) => panic!("unexpected scalar error {other:?}"),
            }
        }
    }

    #[test]
    fn lockstep_lanes_match_scalar_bit_for_bit() {
        for lanes in [1usize, 2, 4, 8] {
            for (n, p, seed) in [
                (1usize, 1.0, 3u64),
                (6, 0.4, 11),
                (11, 0.3, 42),
                (16, 0.2, 5),
            ] {
                let (pattern, base) = random_system(n, p, seed);
                let matrices: Vec<Matrix> = (0..lanes)
                    .map(|l| base.scaled(1.0 + 0.37 * l as f64))
                    .collect();
                let mut lockstep = LockstepLu::new(SymbolicLu::analyze(&pattern), lanes);
                let b: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 2.0 + 0.5).collect();
                // Twice: cold (record + generic lanes) then warm (replay).
                assert_lockstep_matches_scalar(&pattern, &matrices, &mut lockstep, &b);
                assert_lockstep_matches_scalar(&pattern, &matrices, &mut lockstep, &b);
            }
        }
    }

    #[test]
    fn lockstep_ragged_tail_and_idle_lanes() {
        let (pattern, base) = random_system(9, 0.35, 19);
        let mut lockstep = LockstepLu::new(SymbolicLu::analyze(&pattern), 4);
        let b: Vec<f64> = (0..9).map(|i| 0.3 * i as f64 - 1.0).collect();
        // Full group, then a ragged tail of 2, then 1.
        for count in [4usize, 2, 1, 3] {
            let matrices: Vec<Matrix> = (0..count)
                .map(|l| base.scaled(0.8 + 0.29 * l as f64))
                .collect();
            assert_lockstep_matches_scalar(&pattern, &matrices, &mut lockstep, &b);
        }
    }

    #[test]
    fn lockstep_pivot_deviation_isolates_the_lane() {
        // One lane's values flip the column-0 pivot to a different row while
        // the others keep the recorded order: only that lane may leave the
        // program, and every lane must stay bit-identical to scalar.
        let mut bld = PatternBuilder::new(3);
        for i in 0..3 {
            for j in 0..3 {
                bld.insert(i, j);
            }
        }
        let pattern = bld.build();
        let stable =
            Matrix::from_rows(&[&[9.0, 1.0, 2.0], &[1.0, 7.0, 0.5], &[2.0, 0.5, 8.0]]).unwrap();
        let flipped = Matrix::from_rows(&[
            &[1.0, 1.0, 2.0],
            &[9.0, 7.0, 0.5], // column 0 now pivots to row 1
            &[2.0, 0.5, 8.0],
        ])
        .unwrap();
        let b = [1.0, -2.0, 0.5];
        let mut lockstep = LockstepLu::new(SymbolicLu::analyze(&pattern), 4);
        let warm = vec![stable.clone(); 4];
        assert_lockstep_matches_scalar(&pattern, &warm, &mut lockstep, &b);
        let mixed = vec![stable.clone(), flipped.clone(), stable.clone(), flipped];
        assert_lockstep_matches_scalar(&pattern, &mixed, &mut lockstep, &b);
        // And the warm program still replays for conforming lanes.
        assert_lockstep_matches_scalar(&pattern, &warm, &mut lockstep, &b);
    }

    #[test]
    fn lockstep_singular_lane_does_not_poison_neighbours() {
        let mut bld = PatternBuilder::new(2);
        for (i, j) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            bld.insert(i, j);
        }
        let pattern = bld.build();
        let good = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let b = [1.0, 2.0];
        let mut lockstep = LockstepLu::new(SymbolicLu::analyze(&pattern), 3);
        let matrices = vec![good.clone(), singular, good];
        // Cold and warm rounds: the singular middle lane fails with the
        // scalar kernel's exact verdict, lanes 0/2 stay bit-identical.
        assert_lockstep_matches_scalar(&pattern, &matrices, &mut lockstep, &b);
        assert_lockstep_matches_scalar(&pattern, &matrices, &mut lockstep, &b);
    }

    #[test]
    fn lockstep_multiword_masks_match_scalar() {
        // n > 64 exercises the per-lane general path (multi-word row masks).
        let (pattern, base) = random_system(70, 0.15, 21);
        let matrices: Vec<Matrix> = (0..2).map(|l| base.scaled(1.0 + l as f64)).collect();
        let mut lockstep = LockstepLu::new(SymbolicLu::analyze(&pattern), 2);
        let b: Vec<f64> = (0..70).map(|i| (i as f64 * 0.11).sin()).collect();
        assert_lockstep_matches_scalar(&pattern, &matrices, &mut lockstep, &b);
    }

    #[test]
    fn dense_pattern_equals_dense_kernel_on_random_matrices() {
        // With a fully dense pattern the sparse kernel must reduce exactly to
        // the dense algorithm, including when values are zero inside the
        // pattern (exercising the multiplier != 0.0 skip).
        for seed in [1u64, 2, 3] {
            let n = 8;
            let mut rng = Rand(seed);
            let mut builder = PatternBuilder::new(n);
            let mut dense = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    builder.insert(i, j);
                    // A third of the in-pattern entries are numeric zeros.
                    let v = rng.next();
                    dense[(i, j)] = if v.abs() < 0.33 { 0.0 } else { v };
                }
                dense[(i, i)] += n as f64;
            }
            let pattern = builder.build();
            let mut sparse = sparse_from_dense(&pattern, &dense);
            sparse.factorize().unwrap();
            let b: Vector = (0..n).map(|i| (i as f64) * 0.7 - 1.0).collect();
            assert_solutions_bit_identical(&dense, &sparse, &b);
        }
    }
}
