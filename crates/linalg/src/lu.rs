//! LU decomposition with partial pivoting.
//!
//! The circuit simulator's Newton–Raphson loop solves one dense linear system
//! per iteration. Those systems are unsymmetric (MOSFET transconductance stamps
//! break symmetry), so LU with partial pivoting is the right general-purpose
//! factorization.

use crate::{LinalgError, Matrix, Result, Vector, SINGULARITY_TOLERANCE};

/// LU decomposition `P A = L U` of a square matrix with partial (row) pivoting.
///
/// # Examples
///
/// ```
/// use gis_linalg::{Matrix, Vector, LuDecomposition};
///
/// # fn main() -> Result<(), gis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0],
///                             &[4.0, -6.0, 0.0],
///                             &[-2.0, 7.0, 2.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let b = Vector::from_slice(&[5.0, -2.0, 9.0]);
/// let x = lu.solve(&b)?;
/// assert!((&a.matvec(&x)? - &b).norm() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper) factors.
    factors: Matrix,
    /// Row permutation applied to the input matrix.
    permutation: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    permutation_sign: f64,
}

impl LuDecomposition {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot below [`SINGULARITY_TOLERANCE`]
    ///   (relative to the largest entry of the matrix) is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut factors = a.clone();
        let mut permutation: Vec<usize> = (0..n).collect();
        let mut permutation_sign = 1.0;
        let scale = a.norm_max().max(1.0);

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_value = factors[(k, k)].abs();
            for i in (k + 1)..n {
                let v = factors[(i, k)].abs();
                if v > pivot_value {
                    pivot_value = v;
                    pivot_row = i;
                }
            }
            if pivot_value < SINGULARITY_TOLERANCE * scale {
                return Err(LinalgError::Singular {
                    pivot: k,
                    value: pivot_value,
                });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = factors[(k, j)];
                    factors[(k, j)] = factors[(pivot_row, j)];
                    factors[(pivot_row, j)] = tmp;
                }
                permutation.swap(k, pivot_row);
                permutation_sign = -permutation_sign;
            }
            let pivot = factors[(k, k)];
            for i in (k + 1)..n {
                let multiplier = factors[(i, k)] / pivot;
                factors[(i, k)] = multiplier;
                // gis-analyze: allow(float-eq, structural-zero skip: exact zeros stay exact in elimination)
                if multiplier != 0.0 {
                    for j in (k + 1)..n {
                        let delta = multiplier * factors[(k, j)];
                        factors[(i, j)] -= delta;
                    }
                }
            }
        }

        Ok(LuDecomposition {
            factors,
            permutation,
            permutation_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x[i] = b[self.permutation[i]];
        }
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.permutation_sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }

    /// Computes the inverse of the original matrix, column by column.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`], which cannot occur for
    /// a successfully constructed decomposition but is kept in the signature for
    /// uniformity.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::basis(n, j)?;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

/// Solves `A x = b` in one call, factoring `a` internally.
///
/// Prefer constructing a [`LuDecomposition`] when the same matrix is solved
/// against several right-hand sides.
///
/// # Errors
///
/// Propagates factorization and dimension errors from [`LuDecomposition`].
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_like_matrix(n: usize, seed: u64) -> Matrix {
        // Simple deterministic pseudo-random fill (xorshift) — keeps the test
        // independent of the rand crate.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::from_fn(n, n, |_, _| next());
        // Diagonally dominate to guarantee non-singularity.
        for i in 0..n {
            m[(i, i)] += n as f64;
        }
        m
    }

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn residual_small_for_larger_systems() {
        for n in [1, 2, 5, 10, 30] {
            let a = random_like_matrix(n, 42 + n as u64);
            let b: Vector = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let lu = LuDecomposition::new(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let residual = &a.matvec(&x).unwrap() - &b;
            assert!(
                residual.norm() < 1e-9 * b.norm().max(1.0),
                "residual too large for n={n}: {}",
                residual.norm()
            );
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_matches_closed_form() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - (-2.0)).abs() < 1e-12);
        let i = Matrix::identity(4);
        assert!((LuDecomposition::new(&i).unwrap().determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = random_like_matrix(6, 7);
        let lu = LuDecomposition::new(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let product = a.matmul(&inv).unwrap();
        let diff = &product - &Matrix::identity(6);
        assert!(diff.norm_frobenius() < 1e-9);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
    }
}
