//! Dense, row-major matrix of `f64` values.

use crate::{LinalgError, Result, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// The circuit simulator assembles its modified-nodal-analysis Jacobian into a
/// `Matrix`, and the statistics layer uses it for covariance matrices and
/// design matrices. Storage is a flat `Vec<f64>` in row-major order.
///
/// # Examples
///
/// ```
/// use gis_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), gis_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let x = Vector::from_slice(&[1.0, 1.0]);
/// assert_eq!(a.matvec(&x)?.as_slice(), &[3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the rows have differing lengths
    /// or if no rows are given.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "matrix must have at least one row".to_string(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidArgument(
                "all rows must have the same length".to_string(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "expected {} entries for a {rows}x{cols} matrix, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the flat row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> Vector {
        assert!(i < self.rows, "row index out of range");
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns column `j` as a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Sets every entry to zero, keeping the allocation. Used by the MNA
    /// assembler between Newton iterations.
    pub fn clear(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Adds `value` to entry `(i, j)` — the fundamental "stamping" operation of
    /// modified nodal analysis.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, value: f64) {
        self[(i, j)] += value;
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = 0.0;
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn matvec_transposed(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matvec_transposed",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, a) in row.iter().enumerate() {
                out[j] += a * xi;
            }
        }
        Ok(out)
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // gis-analyze: allow(float-eq, structural-zero skip preserves sparsity without rounding)
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Returns a new matrix scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the main diagonal as a [`Vector`]. For rectangular matrices the
    /// diagonal has `min(rows, cols)` entries.
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Computes the outer product `x yᵀ`.
    pub fn outer(x: &Vector, y: &Vector) -> Matrix {
        Matrix::from_fn(x.len(), y.len(), |i, j| x[i] * y[j])
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add dimension mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub dimension mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i.diagonal().as_slice(), &[1.0, 1.0, 1.0]);
        let d = Matrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_validation() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_row_major_validation() {
        assert!(Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let x = Vector::from_slice(&[1.0, -1.0]);
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[-1.0, -1.0, -1.0]);
        let y = Vector::from_slice(&[1.0, 1.0, 1.0]);
        assert_eq!(a.matvec_transposed(&y).unwrap().as_slice(), &[9.0, 12.0]);
        assert_eq!(a.transposed().shape(), (2, 3));
        assert_eq!(a.transposed()[(0, 2)], 5.0);
    }

    #[test]
    fn matvec_dimension_mismatch() {
        let a = Matrix::zeros(2, 2);
        assert!(a.matvec(&Vector::zeros(3)).is_err());
        assert!(a.matvec_transposed(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_matches_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(1, 1)], 50.0);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn row_and_column_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(a.column(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn stamping_and_clear() {
        let mut m = Matrix::zeros(2, 2);
        m.add_at(0, 0, 1.0);
        m.add_at(0, 0, 2.0);
        assert_eq!(m[(0, 0)], 3.0);
        m.clear();
        assert_eq!(m.norm_max(), 0.0);
    }

    #[test]
    fn norms_and_symmetry() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(a.norm_frobenius(), 5.0);
        assert_eq!(a.norm_max(), 4.0);
        assert!(a.is_symmetric(0.0));
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(!b.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
        assert!(a.is_finite());
    }

    #[test]
    fn outer_product() {
        let x = Vector::from_slice(&[1.0, 2.0]);
        let y = Vector::from_slice(&[3.0, 4.0, 5.0]);
        let o = Matrix::outer(&x, &y);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 10.0);
    }

    #[test]
    fn operators() {
        let a = Matrix::identity(2);
        let b = Matrix::from_diagonal(&[2.0, 2.0]);
        assert_eq!((&a + &a), b);
        assert_eq!((&b - &a), a);
        assert_eq!((&a * 2.0), b);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Matrix::identity(2)).is_empty());
    }
}
