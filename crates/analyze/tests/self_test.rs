//! Analyzer self-tests: the embedded fixtures pin the detection behavior, and
//! `workspace_is_clean` makes `cargo test` itself enforce the gate — the
//! analyzer cannot drift from the tree it guards.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_analyze::lints::{analyze_file, Config, Finding};
use std::path::Path;

const BAD: &str = include_str!("../fixtures/bad.rs");
const CLEAN: &str = include_str!("../fixtures/clean.rs");
const STALE: &str = include_str!("../fixtures/stale.rs");

/// Fixture files are analyzed under a synthetic crate named `fixture` that is
/// result-affecting and panic-audited, so every lint is live.
fn fixture_config() -> Config {
    Config {
        result_affecting_crates: vec!["fixture".to_string()],
        panic_audit_files: vec![
            "crates/fixture/src/bad.rs".to_string(),
            "crates/fixture/src/clean.rs".to_string(),
        ],
    }
}

/// Parses `// EXPECT: <lint>` (finding on the same line) and
/// `// EXPECT-NEXT: <lint>` (finding on the following line) markers.
fn expected_findings(source: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let line_no = (i + 1) as u32;
        if let Some(rest) = line.split("EXPECT-NEXT: ").nth(1) {
            out.push((rest.trim().to_string(), line_no + 1));
        } else if let Some(rest) = line.split("EXPECT: ").nth(1) {
            out.push((rest.trim().to_string(), line_no));
        }
    }
    out
}

fn unallowed(findings: &[Finding]) -> Vec<(String, u32)> {
    findings
        .iter()
        .filter(|f| !f.allowed)
        .map(|f| (f.lint.to_string(), f.line))
        .collect()
}

#[test]
fn bad_fixture_every_seeded_violation_is_detected() {
    let findings = analyze_file("crates/fixture/src/bad.rs", BAD, &fixture_config());
    let mut got = unallowed(&findings);
    let mut want = expected_findings(BAD);
    got.sort();
    want.sort();
    assert!(!want.is_empty(), "fixture must seed violations");
    assert_eq!(
        got, want,
        "bad fixture: detected findings must match the EXPECT markers exactly"
    );
}

#[test]
fn clean_fixture_has_no_unallowed_findings() {
    let findings = analyze_file("crates/fixture/src/clean.rs", CLEAN, &fixture_config());
    let got = unallowed(&findings);
    assert!(
        got.is_empty(),
        "clean fixture must pass the gate, got {got:?}"
    );
    let allowed = findings.iter().filter(|f| f.allowed).count();
    assert!(
        allowed >= 4,
        "clean fixture exercises the allowlist (naive-accum x2, float-eq, \
         float-cast, panic-site), got {allowed} allowed findings"
    );
}

#[test]
fn stale_fixture_reports_every_dead_suppression() {
    let findings = analyze_file("crates/fixture/src/stale.rs", STALE, &fixture_config());
    let mut got = unallowed(&findings);
    let mut want = expected_findings(STALE);
    got.sort();
    want.sort();
    assert_eq!(
        got, want,
        "stale fixture: every dead allow must surface as stale-allow"
    );
    assert!(got.iter().all(|(lint, _)| lint == "stale-allow"));
}

#[test]
fn workspace_is_clean() {
    // crates/analyze/ → workspace root. This test is the gate: if any crate
    // picks up an unallowlisted violation, `cargo test` fails right here.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report =
        gis_analyze::analyze_workspace(&root, &Config::default()).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 50,
        "the scan must cover the workspace"
    );
    let bad: Vec<String> = report
        .unallowed()
        .map(|f| format!("{}:{}:{} [{}] {}", f.path, f.line, f.col, f.lint, f.message))
        .collect();
    assert!(
        bad.is_empty(),
        "workspace has unallowlisted findings:\n{}",
        bad.join("\n")
    );
}

#[test]
fn json_report_roundtrips_the_fixture() {
    let findings = analyze_file("crates/fixture/src/bad.rs", BAD, &fixture_config());
    let n = findings.iter().filter(|f| !f.allowed).count();
    let report = gis_analyze::report::Report {
        findings,
        files_scanned: 1,
    };
    let json = report.render_json();
    assert!(json.contains(&format!("\"unallowed_count\": {n}")));
    assert!(json.contains("\"lint\": \"nondet-iter\""));
    assert!(json.contains("\"path\": \"crates/fixture/src/bad.rs\""));
}
