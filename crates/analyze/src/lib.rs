//! `gis-analyze` — a std-only static analyzer that enforces this workspace's
//! determinism and hot-path invariants at the token level.
//!
//! # Why this exists
//!
//! Every guarantee the estimator stack leans on — results bit-identical at
//! any thread count, the sparse kernel bit-identical to the dense reference,
//! checkpoint resume equal to a fresh run, an allocation-free damped-Newton
//! steady state — is a *contract*, and example-based tests only probe it at
//! a handful of points. A single careless `HashMap` iteration or a stray
//! `clone()` in the Newton loop voids the contract silently. This crate is
//! the static side of that enforcement; `tests/no_alloc_contract.rs` at the
//! workspace root is the runtime side.
//!
//! # Lints
//!
//! See [`lints`] for the catalogue (`nondet-iter`, `no-alloc`, `float-eq`,
//! `float-cast`, `naive-accum`, `panic-site`) and the allowlist grammar, and
//! the README's "Static analysis & invariants" section for the mapping from
//! each lint to the contract clause it guards.
//!
//! # Running
//!
//! ```text
//! cargo run -p gis-analyze              # human-readable, exit 1 on findings
//! cargo run -p gis-analyze -- --json    # machine-readable CI artifact
//! cargo run -p gis-analyze -- --verbose # also show allowlisted findings
//! ```
//!
//! The pass is deterministic (files sorted, findings position-sorted) — the
//! analyzer holds itself to the same contract it enforces.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod report;

use lints::{Config, Finding};
use report::Report;
use std::path::{Path, PathBuf};

/// Scans one source tree rooted at `root` (the workspace directory): every
/// `.rs` file under `crates/*/src` and under the umbrella `src/`, in sorted
/// order. Returns the report or an IO error message.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs_files(&dir.join("src"), &mut files);
    }
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lints::analyze_file(&rel, &source, cfg));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    Ok(Report {
        findings,
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files under `dir` (silently skips a missing
/// directory — not every crate has every tree).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
