//! The lint pass: token-level invariant checks plus the allowlist machinery.
//!
//! Each lint guards one clause of the workspace's determinism / hot-path
//! contract:
//!
//! | lint          | contract clause                                          |
//! |---------------|----------------------------------------------------------|
//! | `nondet-iter` | results bit-identical at any thread count: no hash-order |
//! |               | iteration in result-affecting crates                     |
//! | `no-alloc`    | steady-state Newton/estimator paths allocate nothing     |
//! | `float-eq`    | no accidental `==`/`!=` on floats (only `.to_bits()`     |
//! |               | comparisons express bit-identity intentionally)          |
//! | `float-cast`  | no silent truncation of statistics values                |
//! | `naive-accum` | estimator reductions go through Welford / log-sum-exp,   |
//! |               | not naive `sum +=` loops                                 |
//! | `panic-site`  | the sweep daemon path must not abort; every panic site   |
//! |               | is individually justified                                |
//!
//! Suppression grammar (see README "Static analysis & invariants"):
//!
//! - `// gis-analyze: allow(<lint>, <reason>)` — trailing on the offending
//!   line, or on its own line immediately above it. The reason is mandatory.
//! - `/// gis-analyze: no_alloc` or `#[doc = "gis-analyze: no_alloc"]` — marks
//!   the *next* `fn` as a hot path subject to the `no-alloc` lint.
//!
//! Two meta-lints keep the allowlist honest: `stale-allow` fires on an allow
//! annotation that matches no finding (suppressions can't accumulate), and
//! `bad-annotation` fires on anything that says `gis-analyze:` but does not
//! parse.

use crate::lexer::{lex, Comment, TokKind, Token};

/// Lint identifiers, used in diagnostics and in `allow(...)` annotations.
pub const LINT_NONDET_ITER: &str = "nondet-iter";
/// See [`LINT_NONDET_ITER`].
pub const LINT_NO_ALLOC: &str = "no-alloc";
/// See [`LINT_NONDET_ITER`].
pub const LINT_FLOAT_EQ: &str = "float-eq";
/// See [`LINT_NONDET_ITER`].
pub const LINT_FLOAT_CAST: &str = "float-cast";
/// See [`LINT_NONDET_ITER`].
pub const LINT_NAIVE_ACCUM: &str = "naive-accum";
/// See [`LINT_NONDET_ITER`].
pub const LINT_PANIC_SITE: &str = "panic-site";
/// Meta-lint: an `allow(...)` annotation that suppresses nothing.
pub const LINT_STALE_ALLOW: &str = "stale-allow";
/// Meta-lint: a `gis-analyze:` comment that does not parse.
pub const LINT_BAD_ANNOTATION: &str = "bad-annotation";

/// Every real (suppressible) lint name. The two meta-lints are not
/// suppressible and so are excluded.
pub const ALLOWABLE_LINTS: &[&str] = &[
    LINT_NONDET_ITER,
    LINT_NO_ALLOC,
    LINT_FLOAT_EQ,
    LINT_FLOAT_CAST,
    LINT_NAIVE_ACCUM,
    LINT_PANIC_SITE,
];

/// Analyzer configuration. [`Config::default`] encodes this workspace's
/// contract; fixtures construct custom configs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names (under `crates/`) whose outputs reach estimator
    /// results, reports, or serialized artifacts. `nondet-iter` applies here.
    pub result_affecting_crates: Vec<String>,
    /// Workspace-relative paths of library files reachable from the sweep
    /// daemon path. `panic-site` applies here.
    pub panic_audit_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            result_affecting_crates: ["core", "stats", "linalg", "circuit"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            panic_audit_files: [
                "crates/core/src/sweep.rs",
                "crates/core/src/exec.rs",
                "crates/core/src/analysis.rs",
                // Fault containment/injection: the module whose whole job
                // is catching panics must itself justify every panic site.
                "crates/core/src/fault.rs",
                // The daemon path: every panic site in the serving stack
                // must carry a written justification — a connection thread
                // that panics on wire data would look like a hung client.
                "crates/serve/src/protocol.rs",
                "crates/serve/src/job.rs",
                "crates/serve/src/cache.rs",
                "crates/serve/src/server.rs",
                "crates/serve/src/client.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

/// One diagnostic produced by the pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint name (one of the `LINT_*` constants).
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it (or how to allowlist it).
    pub hint: String,
    /// Whether a matching `allow(...)` annotation suppresses this finding.
    pub allowed: bool,
    /// The source line, for rustc-style rendering.
    pub excerpt: String,
}

/// A parsed `// gis-analyze: allow(<lint>, <reason>)` annotation.
struct AllowAnn {
    lint: String,
    #[allow(dead_code)]
    reason: String,
    /// The code line this annotation covers.
    target_line: u32,
    line: u32,
    col: u32,
    used: bool,
}

const FLOAT_CONSTS: &[&str] = &[
    "INFINITY",
    "NEG_INFINITY",
    "NAN",
    "EPSILON",
    "MAX",
    "MIN",
    "MIN_POSITIVE",
];
const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];
const TRUNCATING_CALLS: &[&str] = &["floor", "ceil", "round", "trunc"];

/// Runs every lint over one file. `rel_path` must be workspace-relative with
/// forward slashes (e.g. `crates/core/src/sweep.rs`) — it selects which lints
/// apply. Returns all findings, including suppressed ones (`allowed = true`)
/// and the meta-lint findings, sorted by position.
pub fn analyze_file(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let excerpt = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.to_string())
            .unwrap_or_default()
    };
    let in_test = test_mask(tokens);

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<AllowAnn> = Vec::new();
    parse_annotations(
        rel_path,
        &lexed.comments,
        tokens,
        &mut allows,
        &mut findings,
        &excerpt,
    );

    let crate_name = crate_dir_name(rel_path);
    let result_affecting = crate_name
        .map(|c| cfg.result_affecting_crates.iter().any(|r| r == c))
        .unwrap_or(false);
    let panic_audited = cfg.panic_audit_files.iter().any(|f| f == rel_path);
    let reduce_owner = is_reduce_owner(source);

    let no_alloc_bodies =
        no_alloc_regions(&lexed.comments, tokens, rel_path, &mut findings, &excerpt);

    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        // ---- nondet-iter -------------------------------------------------
        if result_affecting
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            findings.push(Finding {
                lint: LINT_NONDET_ITER,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in result-affecting crate `{}`: hash iteration order is \
                     nondeterministic and can leak into results",
                    t.text,
                    crate_name.unwrap_or("?")
                ),
                hint: "use BTreeMap/BTreeSet or sort before iterating; if provably \
                       order-free, annotate `// gis-analyze: allow(nondet-iter, <reason>)`"
                    .to_string(),
                allowed: false,
                excerpt: excerpt(t.line),
            });
        }
        // ---- float-eq ----------------------------------------------------
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let floaty = is_float_operand(tokens, i);
            let bitwise = lines
                .get(t.line as usize - 1)
                .is_some_and(|l| l.contains("to_bits"));
            if floaty && !bitwise {
                findings.push(Finding {
                    lint: LINT_FLOAT_EQ,
                    path: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` on a floating-point operand: exact float comparison is \
                         almost always a bug outside bit-identity checks",
                        t.text
                    ),
                    hint: "compare via `.to_bits()` for bit-identity, use a tolerance, \
                           or annotate `// gis-analyze: allow(float-eq, <reason>)` for \
                           intentional exact sentinels"
                        .to_string(),
                    allowed: false,
                    excerpt: excerpt(t.line),
                });
            }
        }
        // ---- float-cast --------------------------------------------------
        if t.kind == TokKind::Ident && t.text == "as" {
            if let Some(next) = tokens.get(i + 1) {
                let to_f32 = next.text == "f32";
                let truncating =
                    INT_TYPES.contains(&next.text.as_str()) && float_cast_source(tokens, i);
                if to_f32 || truncating {
                    findings.push(Finding {
                        lint: LINT_FLOAT_CAST,
                        path: rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: if to_f32 {
                            "`as f32` narrows an f64 statistics value, losing ~half the \
                             mantissa"
                                .to_string()
                        } else {
                            format!(
                                "`as {}` truncates a floating-point value; rounding \
                                 direction and overflow behavior are easy to get wrong",
                                next.text
                            )
                        },
                        hint: "keep statistics in f64 / use checked conversion, or \
                               annotate `// gis-analyze: allow(float-cast, <reason>)` \
                               when truncation is the intended semantics"
                            .to_string(),
                        allowed: false,
                        excerpt: excerpt(t.line),
                    });
                }
            }
        }
        // ---- naive-accum -------------------------------------------------
        if reduce_owner && t.kind == TokKind::Punct && t.text == "+=" {
            if let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) {
                if prev.kind == TokKind::Ident && prev.text.to_lowercase().contains("sum") {
                    findings.push(Finding {
                        lint: LINT_NAIVE_ACCUM,
                        path: rel_path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "naive `{} +=` accumulation in an estimator-reduce file; \
                             plain summation loses precision and breaks merge identities",
                            prev.text
                        ),
                        hint: "route through the Welford/Chan or log-sum-exp helpers, or \
                               annotate `// gis-analyze: allow(naive-accum, <reason>)` \
                               explaining why plain summation is exact here"
                            .to_string(),
                        allowed: false,
                        excerpt: excerpt(t.line),
                    });
                }
            }
        }
        // ---- panic-site --------------------------------------------------
        if panic_audited && t.kind == TokKind::Ident {
            let method_panic = (t.text == "unwrap" || t.text == "expect")
                && i >= 1
                && tokens[i - 1].text == "."
                && tokens.get(i + 1).map(|n| n.text == "(").unwrap_or(false);
            let macro_panic = matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && tokens.get(i + 1).map(|n| n.text == "!").unwrap_or(false);
            if method_panic || macro_panic {
                findings.push(Finding {
                    lint: LINT_PANIC_SITE,
                    path: rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` in sweep-daemon-path library code: a panic here aborts a \
                         long-running sweep",
                        t.text
                    ),
                    hint: "return a Result, or annotate \
                           `// gis-analyze: allow(panic-site, <reason>)` stating the \
                           invariant that makes the panic unreachable"
                        .to_string(),
                    allowed: false,
                    excerpt: excerpt(t.line),
                });
            }
        }
    }

    // ---- no-alloc (marker-scoped) ---------------------------------------
    for region in &no_alloc_bodies {
        scan_no_alloc(tokens, region, rel_path, &in_test, &mut findings, &excerpt);
    }

    apply_allows(&mut allows, &mut findings);

    // ---- stale-allow -----------------------------------------------------
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                lint: LINT_STALE_ALLOW,
                path: rel_path.to_string(),
                line: a.line,
                col: a.col,
                message: format!(
                    "stale allowlist entry: `allow({})` matches no `{}` finding on \
                     line {}",
                    a.lint, a.lint, a.target_line
                ),
                hint: "delete the annotation (the code it excused is gone), or move it \
                       next to the site it is meant to cover"
                    .to_string(),
                allowed: false,
                excerpt: excerpt(a.line),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.col, f.lint));
    findings
}

/// `crates/<name>/src/...` → `Some(name)`.
fn crate_dir_name(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// A file "owns" an estimator reduction when it defines both halves of the
/// streaming-accumulator protocol, or hosts the log-sum-exp helper.
fn is_reduce_owner(source: &str) -> bool {
    (source.contains("fn push(") && source.contains("fn merge("))
        || source.contains("fn log_sum_exp")
}

/// Marks every token inside a `#[cfg(test)]` item. The lints are about
/// shipped library code; test modules may compare floats exactly, unwrap,
/// and allocate at will.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let attr_end = i + 6; // index of ']' in `# [ cfg ( test ) ]`
            if let Some(end) = item_end(tokens, attr_end + 1) {
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, t)| tokens[i + k].text == *t)
}

/// Finds the end of the item starting at `start`: either the `}` matching its
/// first body-level `{`, or a `;` reached first at zero delimiter depth
/// (e.g. `#[cfg(test)] use ...;`).
fn item_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut brace = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 && paren == 0 {
                    return Some(j);
                }
            }
            ";" if paren == 0 && brace == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// True when the `==`/`!=` at token `i` plausibly compares floats: a float
/// literal or an `f64::CONST`/`f32::CONST` pattern sits immediately on
/// either side.
fn is_float_operand(tokens: &[Token], i: usize) -> bool {
    let prev_float = i >= 1 && tokens[i - 1].kind == TokKind::Float;
    let next_float = tokens
        .get(i + 1)
        .map(|t| t.kind == TokKind::Float)
        .unwrap_or(false);
    let prev_const = i >= 3
        && FLOAT_CONSTS.contains(&tokens[i - 1].text.as_str())
        && tokens[i - 2].text == "::"
        && (tokens[i - 3].text == "f64" || tokens[i - 3].text == "f32");
    let next_const = tokens.len() > i + 3
        && (tokens[i + 1].text == "f64" || tokens[i + 1].text == "f32")
        && tokens[i + 2].text == "::"
        && FLOAT_CONSTS.contains(&tokens[i + 3].text.as_str());
    prev_float || next_float || prev_const || next_const
}

/// True when the value being cast at the `as` token `i` is visibly floating
/// point: a float literal, or a `.floor()`/`.ceil()`/`.round()`/`.trunc()`
/// call result.
fn float_cast_source(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &tokens[i - 1];
    if prev.kind == TokKind::Float {
        return true;
    }
    // `<expr>.floor() as usize` → tokens `floor` `(` `)` `as`.
    prev.text == ")"
        && i >= 3
        && tokens[i - 2].text == "("
        && TRUNCATING_CALLS.contains(&tokens[i - 3].text.as_str())
}

/// A marker-designated hot-path function body: token index range (inclusive)
/// plus the function name for diagnostics.
struct NoAllocRegion {
    fn_name: String,
    start: usize,
    end: usize,
}

/// Collects `gis-analyze: no_alloc` markers (doc-comment or
/// `#[doc = "..."]` attribute form) and resolves each to the body of the
/// next `fn`. An unresolvable marker is a `bad-annotation` finding.
fn no_alloc_regions(
    comments: &[Comment],
    tokens: &[Token],
    rel_path: &str,
    findings: &mut Vec<Finding>,
    excerpt: &dyn Fn(u32) -> String,
) -> Vec<NoAllocRegion> {
    let mut marker_sites: Vec<(u32, u32, usize)> = Vec::new(); // line, col, first token idx

    for c in comments {
        if let Some(rest) = annotation_body(&c.text) {
            if rest == "no_alloc" {
                let idx = tokens
                    .iter()
                    .position(|t| (t.line, t.col) > (c.line, c.col))
                    .unwrap_or(tokens.len());
                marker_sites.push((c.line, c.col, idx));
            }
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokKind::Str
            && t.text.contains("gis-analyze: no_alloc")
            && i >= 4
            && tokens[i - 1].text == "="
            && tokens[i - 2].text == "doc"
            && tokens[i - 3].text == "["
            && tokens[i - 4].text == "#"
        {
            marker_sites.push((t.line, t.col, i + 2)); // skip the closing `]`
        }
    }

    let mut regions = Vec::new();
    for (line, col, from) in marker_sites {
        match resolve_fn_body(tokens, from) {
            Some((fn_name, start, end)) => regions.push(NoAllocRegion {
                fn_name,
                start,
                end,
            }),
            None => findings.push(Finding {
                lint: LINT_BAD_ANNOTATION,
                path: rel_path.to_string(),
                line,
                col,
                message: "`gis-analyze: no_alloc` marker is not followed by a `fn` with \
                          a body"
                    .to_string(),
                hint: "place the marker directly above the hot-path function it guards".to_string(),
                allowed: false,
                excerpt: excerpt(line),
            }),
        }
    }
    regions
}

/// From token `from`, finds the next `fn`, its name, and its body's token
/// range: the first `{` at paren depth 0 after the name through its matching
/// `}`.
fn resolve_fn_body(tokens: &[Token], from: usize) -> Option<(String, usize, usize)> {
    let fn_idx = tokens[from..]
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == "fn")
        .map(|p| p + from)?;
    let name = tokens.get(fn_idx + 1)?.text.clone();
    let mut paren = 0i32;
    let mut body_start = None;
    for (j, t) in tokens.iter().enumerate().skip(fn_idx + 2) {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "{" if paren == 0 => {
                body_start = Some(j);
                break;
            }
            ";" if paren == 0 => return None, // trait method without body
            _ => {}
        }
    }
    let start = body_start?;
    let mut brace = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        match t.text.as_str() {
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    return Some((name, start, j));
                }
            }
            _ => {}
        }
    }
    None
}

/// Forbidden-token scan of one `no_alloc` body. `debug_assert!(...)`
/// arguments are exempt: they vanish in release builds, which is exactly
/// where the contract applies.
fn scan_no_alloc(
    tokens: &[Token],
    region: &NoAllocRegion,
    rel_path: &str,
    in_test: &[bool],
    findings: &mut Vec<Finding>,
    excerpt: &dyn Fn(u32) -> String,
) {
    let mut i = region.start;
    while i <= region.end && i < tokens.len() {
        let t = &tokens[i];
        if in_test[i] {
            i += 1;
            continue;
        }
        // Skip `debug_assert!(...)` / `debug_assert_eq!(...)` arguments.
        if t.kind == TokKind::Ident
            && t.text.starts_with("debug_assert")
            && tokens.get(i + 1).map(|n| n.text == "!").unwrap_or(false)
        {
            i = skip_macro_args(tokens, i + 2).unwrap_or(i + 2);
            continue;
        }
        let hit: Option<&str> = if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Vec" | "Box"
                    if tokens.get(i + 1).map(|n| n.text == "::").unwrap_or(false)
                        && tokens.get(i + 2).map(|n| n.text == "new").unwrap_or(false) =>
                {
                    Some(if t.text == "Vec" {
                        "Vec::new"
                    } else {
                        "Box::new"
                    })
                }
                "vec" if tokens.get(i + 1).map(|n| n.text == "!").unwrap_or(false) => Some("vec!"),
                "clone" if tokens.get(i + 1).map(|n| n.text == "(").unwrap_or(false) => {
                    Some("clone()")
                }
                "to_vec" => Some("to_vec"),
                "collect" => Some("collect"),
                _ => None,
            }
        } else {
            None
        };
        if let Some(what) = hit {
            findings.push(Finding {
                lint: LINT_NO_ALLOC,
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` inside `{}`, which is marked `gis-analyze: no_alloc`",
                    what, region.fn_name
                ),
                hint: "hoist the allocation into the workspace set up before the hot \
                       loop, or annotate `// gis-analyze: allow(no-alloc, <reason>)` \
                       if it is provably cold"
                    .to_string(),
                allowed: false,
                excerpt: excerpt(t.line),
            });
        }
        i += 1;
    }
}

/// Given the index of a macro's opening delimiter, returns the index just
/// past its matching close delimiter.
fn skip_macro_args(tokens: &[Token], open: usize) -> Option<usize> {
    let (open_text, close_text) = match tokens.get(open)?.text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.text == open_text {
            depth += 1;
        } else if t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// Extracts the payload of a `gis-analyze:` line comment: `Some("allow(...)")`
/// or `Some("no_alloc")`, with doc-comment slashes stripped. `None` when the
/// comment is not an annotation. The `gis-analyze:` tag must be the first
/// thing in the comment — prose that merely *mentions* the grammar (like
/// this doc comment) is not an annotation.
fn annotation_body(comment_text: &str) -> Option<&str> {
    let stripped = comment_text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    Some(stripped.strip_prefix("gis-analyze:")?.trim())
}

/// Parses every `gis-analyze:` comment into either an [`AllowAnn`] or a
/// `bad-annotation` finding.
fn parse_annotations(
    rel_path: &str,
    comments: &[Comment],
    tokens: &[Token],
    allows: &mut Vec<AllowAnn>,
    findings: &mut Vec<Finding>,
    excerpt: &dyn Fn(u32) -> String,
) {
    for c in comments {
        let Some(body) = annotation_body(&c.text) else {
            continue;
        };
        if body == "no_alloc" {
            continue; // handled by no_alloc_regions
        }
        let bad = |msg: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                lint: LINT_BAD_ANNOTATION,
                path: rel_path.to_string(),
                line: c.line,
                col: c.col,
                message: msg,
                hint: format!(
                    "annotation grammar: `// gis-analyze: allow(<lint>, <reason>)` with \
                     lint one of {}",
                    ALLOWABLE_LINTS.join(", ")
                ),
                allowed: false,
                excerpt: excerpt(c.line),
            });
        };
        let Some(inner) = body
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            bad(
                format!("unparseable `gis-analyze:` annotation: `{}`", body),
                findings,
            );
            continue;
        };
        let Some((lint, reason)) = inner.split_once(',') else {
            bad(
                format!(
                    "`allow({})` is missing a reason: every suppression must say why",
                    inner
                ),
                findings,
            );
            continue;
        };
        let (lint, reason) = (lint.trim(), reason.trim());
        if !ALLOWABLE_LINTS.contains(&lint) {
            bad(
                format!("unknown lint `{}` in allow annotation", lint),
                findings,
            );
            continue;
        }
        if reason.is_empty() {
            bad(
                format!(
                    "`allow({})` has an empty reason: every suppression must say why",
                    lint
                ),
                findings,
            );
            continue;
        }
        let target_line = if c.own_line {
            tokens
                .iter()
                .find(|t| t.line > c.line)
                .map(|t| t.line)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        allows.push(AllowAnn {
            lint: lint.to_string(),
            reason: reason.to_string(),
            target_line,
            line: c.line,
            col: c.col,
            used: false,
        });
    }
}

/// Marks findings covered by an allow annotation, and annotations that cover
/// at least one finding as used. One annotation may cover several findings of
/// its lint on its target line (e.g. two casts in one expression).
fn apply_allows(allows: &mut [AllowAnn], findings: &mut [Finding]) {
    for a in allows.iter_mut() {
        for f in findings.iter_mut() {
            if f.lint == a.lint && f.line == a.target_line {
                f.allowed = true;
                a.used = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        analyze_file(path, src, &Config::default())
    }

    fn unallowed(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| !f.allowed).collect()
    }

    #[test]
    fn hashmap_flagged_only_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\n";
        let hit = run("crates/core/src/x.rs", src);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].lint, LINT_NONDET_ITER);
        assert_eq!(hit[0].line, 1);
        let miss = run("crates/bench/src/x.rs", src);
        assert!(miss.is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_and_is_not_stale() {
        let src =
            "use std::collections::HashMap; // gis-analyze: allow(nondet-iter, lookup only)\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let src =
            "// gis-analyze: allow(nondet-iter, lookup only)\nuse std::collections::HashMap;\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// gis-analyze: allow(nondet-iter, nothing here)\nlet x = 1;\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LINT_STALE_ALLOW);
    }

    #[test]
    fn bad_annotations_are_reported() {
        for src in [
            "// gis-analyze: allow(nondet-iter)\nlet x = 1;\n", // no reason
            "// gis-analyze: allow(bogus-lint, reason)\nlet x = 1;\n", // unknown lint
            "// gis-analyze: disallow(x)\nlet x = 1;\n",        // unknown verb
        ] {
            let f = run("crates/core/src/x.rs", src);
            assert_eq!(f.len(), 1, "src: {src}");
            assert_eq!(f[0].lint, LINT_BAD_ANNOTATION, "src: {src}");
        }
    }

    #[test]
    fn float_eq_heuristics() {
        let f = run("crates/stats/src/x.rs", "if x == 0.0 { }\n");
        assert_eq!(unallowed(&f).len(), 1);
        assert_eq!(f[0].lint, LINT_FLOAT_EQ);
        let f = run("crates/stats/src/x.rs", "if lo == f64::NEG_INFINITY { }\n");
        assert_eq!(unallowed(&f).len(), 1);
        // to_bits comparisons are the sanctioned way to express bit-identity.
        let f = run(
            "crates/stats/src/x.rs",
            "if a.to_bits() == b.to_bits() { }\n",
        );
        assert!(f.is_empty());
        // Integer comparison is fine.
        let f = run("crates/stats/src/x.rs", "if n == 0 { }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn float_cast_heuristics() {
        let f = run("crates/stats/src/x.rs", "let n = x.floor() as usize;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LINT_FLOAT_CAST);
        let f = run("crates/stats/src/x.rs", "let y = sigma as f32;\n");
        assert_eq!(f.len(), 1);
        // Plain integer widening is fine.
        let f = run("crates/stats/src/x.rs", "let y = n as u64;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn naive_accum_only_in_reduce_owner_files() {
        let owner = "impl A { fn push(&mut self) { self.sum_w += 1.0; } fn merge(&mut self) {} }\n";
        let f = run("crates/stats/src/x.rs", owner);
        assert_eq!(f.iter().filter(|f| f.lint == LINT_NAIVE_ACCUM).count(), 1);
        let not_owner =
            "fn f(xs: &[f64]) -> f64 { let mut sum = 0.0; for x in xs { sum += x; } sum }\n";
        let f = run("crates/stats/src/x.rs", not_owner);
        assert!(f.iter().all(|f| f.lint != LINT_NAIVE_ACCUM));
    }

    #[test]
    fn panic_site_only_in_audited_files() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let f = run("crates/core/src/sweep.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LINT_PANIC_SITE);
        let f = run("crates/core/src/other.rs", src);
        assert!(f.is_empty());
        let f = run("crates/core/src/sweep.rs", "fn g() { panic!(\"boom\"); }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn no_alloc_marker_scopes_the_next_fn() {
        let src = "\
/// gis-analyze: no_alloc
fn hot(&mut self) { self.buf.clear(); }
fn cold(&self) -> Vec<f64> { self.buf.to_vec() }
";
        let f = run("crates/linalg/src/x.rs", src);
        assert!(f.is_empty(), "clear() is fine, cold fn is unmarked: {f:?}");
        let src = "\
/// gis-analyze: no_alloc
fn hot(&mut self) -> Vec<f64> { self.buf.to_vec() }
";
        let f = run("crates/linalg/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LINT_NO_ALLOC);
        assert!(f[0].message.contains("hot"));
    }

    #[test]
    fn no_alloc_attribute_form_and_debug_assert_escape() {
        let src = "\
#[doc = \"gis-analyze: no_alloc\"]
fn hot(&mut self) {
    debug_assert!(self.buf.iter().map(|x| x).collect::<Vec<_>>().len() > 0);
    self.buf.clear();
}
";
        let f = run("crates/linalg/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { assert!(0.5 == 0.5); }
}
";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_use_item_does_not_swallow_the_file() {
        let src = "\
#[cfg(test)]
use foo::bar;
use std::collections::HashMap;
";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(
            f.len(),
            1,
            "HashMap after the cfg(test) use must still fire"
        );
    }
}
