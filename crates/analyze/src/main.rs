//! CLI entry point for the `gis-analyze` CI gate.
//!
//! Exit codes: `0` clean (allowed findings only), `1` unallowlisted findings,
//! `2` usage or IO error.

#![forbid(unsafe_code)]

use gis_analyze::lints::Config;
use gis_analyze::{analyze_workspace, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut verbose = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--verbose" => verbose = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("gis-analyze: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "gis-analyze — determinism & hot-path invariant checker\n\n\
                     USAGE: gis-analyze [--json] [--verbose] [--root <workspace-dir>]\n\n\
                     Scans crates/*/src and src/ for violations of the workspace's\n\
                     determinism contract. Exits 1 on unallowlisted findings."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gis-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("gis-analyze: no workspace root found (pass --root <dir>)");
            return ExitCode::from(2);
        }
    };

    match analyze_workspace(&root, &Config::default()) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text(verbose));
            }
            if report.unallowed().next().is_some() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("gis-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
