//! A minimal, lossless-enough Rust lexer.
//!
//! The lints in this crate are *token-level*: they must never fire on text
//! inside string literals, comments, or char literals, and they must see
//! multi-character operators (`==`, `+=`, `::`) as single tokens. That is the
//! entire contract of this lexer — it does not parse, it does not validate,
//! and it happily lexes slightly-invalid Rust rather than aborting, because a
//! static-analysis gate that crashes on the code it guards is worse than one
//! that misses a corner case.
//!
//! Comments are captured out-of-band (they carry the allowlist annotations,
//! see [`crate::lints`]); everything else becomes a [`Token`] with a 1-based
//! line and column.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    Int,
    /// Float literal (fractional part, exponent, or `f32`/`f64` suffix).
    Float,
    /// String literal: `"…"`, raw `r#"…"#`, and byte variants.
    Str,
    /// Character literal, including escapes.
    CharLit,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Punctuation; multi-character operators are merged (`==`, `::`, `+=`).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// One line comment (`//`, `///`, `//!`), captured for annotation parsing.
///
/// Block comments are skipped but not captured: allowlist annotations must be
/// line comments so that their target line is unambiguous.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the leading slashes, trailing EOL excluded.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Whether the comment is the first non-whitespace thing on its line
    /// (an "own line" comment annotates the next code line; a trailing
    /// comment annotates its own line).
    pub own_line: bool,
}

/// Lexer output: the token stream plus the captured line comments.
#[derive(Debug)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All line comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators merged into single tokens, longest first.
const PUNCTS_3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCTS_2: &[&str] = &[
    "==", "!=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "::", "->", "=>", "<=", ">=", "&&",
    "||", "<<", ">>", "..",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Never fails: unrecognizable
/// bytes are emitted as single-character punctuation.
pub fn lex(source: &str) -> Lexed {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    };
    lx.run();
    let mut lexed = Lexed {
        tokens: lx.tokens,
        comments: lx.comments,
    };
    mark_own_line_comments(&mut lexed);
    lexed
}

/// Computes [`Comment::own_line`]: a comment owns its line when no token
/// starts before it on the same line.
fn mark_own_line_comments(lexed: &mut Lexed) {
    use std::collections::BTreeMap;
    let mut first_token_col: BTreeMap<u32, u32> = BTreeMap::new();
    for t in &lexed.tokens {
        let entry = first_token_col.entry(t.line).or_insert(t.col);
        if t.col < *entry {
            *entry = t.col;
        }
    }
    for c in &mut lexed.comments {
        c.own_line = match first_token_col.get(&c.line) {
            Some(&col) => col > c.col,
            None => true,
        };
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek_at(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek_at(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string_literal(0);
            } else if (c == 'r' || c == 'b') && self.raw_or_byte_string() {
                // handled inside raw_or_byte_string
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if is_ident_start(c) {
                self.ident();
            } else {
                self.punct();
            }
        }
    }

    fn line_comment(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            text,
            line,
            col,
            own_line: false, // fixed up in mark_own_line_comments
        });
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes an ordinary (or byte) string literal. `skipped` characters of
    /// prefix (`b`) have already been consumed by the caller. The token text
    /// preserves the literal body (the `#[doc = "gis-analyze: no_alloc"]`
    /// marker is recognized by inspecting it), but the token kind keeps lints
    /// from ever matching identifiers inside it.
    fn string_literal(&mut self, skipped: usize) {
        let (line, col) = (self.line, self.col - skipped as u32);
        let mut text = String::new();
        if let Some(q) = self.bump() {
            text.push(q); // opening quote
        }
        while let Some(c) = self.peek() {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc); // good enough for \x/\u too
                }
            } else if c == '"' {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push_token(TokKind::Str, text, line, col);
    }

    /// Detects and consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`. Returns
    /// `false` (consuming nothing) when the lookahead is not a string, so the
    /// caller falls through to identifier lexing.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut offset = 0usize;
        if self.peek_at(offset) == Some('b') {
            offset += 1;
        }
        let raw = self.peek_at(offset) == Some('r');
        if raw {
            offset += 1;
        }
        let mut hashes = 0usize;
        while self.peek_at(offset) == Some('#') {
            offset += 1;
            hashes += 1;
        }
        if self.peek_at(offset) != Some('"') {
            return false;
        }
        if !raw && hashes > 0 {
            return false;
        }
        if !raw {
            // b"…": plain string body with escapes.
            let skipped = offset; // just the 'b'
            for _ in 0..skipped {
                self.bump();
            }
            self.string_literal(skipped);
            return true;
        }
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        for _ in 0..=offset {
            if let Some(c) = self.bump() {
                text.push(c); // prefix chars plus the opening quote
            }
        }
        // Raw body: ends at '"' followed by `hashes` hash characters.
        'outer: while let Some(c) = self.peek() {
            if c == '"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek_at(1 + h) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        if let Some(q) = self.bump() {
                            text.push(q);
                        }
                    }
                    break 'outer;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokKind::Str, text, line, col);
        true
    }

    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col);
        match self.peek_at(1) {
            Some('\\') => {
                // Escaped char literal: '\n', '\'', '\x41', '\u{1F600}'.
                self.bump(); // '
                self.bump(); // backslash
                match self.peek() {
                    Some('x') => {
                        self.bump();
                        self.bump();
                        self.bump();
                    }
                    Some('u') => {
                        self.bump();
                        while let Some(c) = self.peek() {
                            let done = c == '}';
                            self.bump();
                            if done {
                                break;
                            }
                        }
                    }
                    Some(_) => {
                        self.bump();
                    }
                    None => {}
                }
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push_token(TokKind::CharLit, String::from("'…'"), line, col);
            }
            Some(_) if self.peek_at(2) == Some('\'') => {
                self.bump();
                self.bump();
                self.bump();
                self.push_token(TokKind::CharLit, String::from("'…'"), line, col);
            }
            _ => {
                // Lifetime: consume the quote plus identifier characters.
                self.bump();
                let mut text = String::from("'");
                while let Some(c) = self.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push_token(TokKind::Lifetime, text, line, col);
            }
        }
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        let mut is_float = false;

        if self.peek() == Some('0')
            && matches!(
                self.peek_at(1),
                Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
            )
        {
            // Prefixed integer: consume prefix then alphanumerics/underscores
            // (digits, hex letters, and any type suffix).
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokKind::Int, text, line, col);
            return;
        }

        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `1.5` is a float, `1..n` is a range over an int,
        // `1.max(2)` is a method call on an int, `1.` alone is a float.
        if self.peek() == Some('.') {
            match self.peek_at(1) {
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some(c) if is_ident_start(c) || c == '.' => {}
                _ => {
                    is_float = true;
                    text.push('.');
                    self.bump();
                }
            }
        }
        // Exponent: `1e9`, `1.5e-12`, `2E+3` are floats.
        if matches!(self.peek(), Some('e') | Some('E')) {
            let after_sign = matches!(self.peek_at(1), Some('+') | Some('-'));
            let digit_offset = if after_sign { 2 } else { 1 };
            if self
                .peek_at(digit_offset)
                .is_some_and(|c| c.is_ascii_digit())
            {
                is_float = true;
                text.push(self.bump().unwrap_or('e'));
                if after_sign {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix: `1f64` and `2.0f32` are floats, `3usize` stays an int.
        let mut suffix = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push_token(kind, text, line, col);
    }

    fn ident(&mut self) {
        let (line, col) = (self.line, self.col);
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokKind::Ident, text, line, col);
    }

    fn punct(&mut self) {
        let (line, col) = (self.line, self.col);
        let probe = |candidates: &[&str], lx: &Lexer| -> Option<String> {
            'next: for cand in candidates {
                for (i, pc) in cand.chars().enumerate() {
                    if lx.peek_at(i) != Some(pc) {
                        continue 'next;
                    }
                }
                return Some((*cand).to_string());
            }
            None
        };
        let matched = probe(PUNCTS_3, self).or_else(|| probe(PUNCTS_2, self));
        match matched {
            Some(text) => {
                for _ in 0..text.chars().count() {
                    self.bump();
                }
                self.push_token(TokKind::Punct, text, line, col);
            }
            None => {
                if let Some(c) = self.bump() {
                    self.push_token(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn floats_versus_ranges_and_methods() {
        assert_eq!(kinds("1.5"), vec![TokKind::Float]);
        assert_eq!(kinds("1e9"), vec![TokKind::Float]);
        assert_eq!(kinds("1.5e-12"), vec![TokKind::Float]);
        assert_eq!(kinds("2f64"), vec![TokKind::Float]);
        assert_eq!(kinds("3usize"), vec![TokKind::Int]);
        assert_eq!(kinds("0xFF"), vec![TokKind::Int]);
        // `0..n` lexes as int, range operator, ident.
        assert_eq!(
            kinds("0..n"),
            vec![TokKind::Int, TokKind::Punct, TokKind::Ident]
        );
        // `1.max(2)` is an int method call.
        assert_eq!(kinds("1.max")[0], TokKind::Int);
    }

    #[test]
    fn operators_are_merged() {
        assert_eq!(texts("a == b"), vec!["a", "==", "b"]);
        assert_eq!(texts("a += b"), vec!["a", "+=", "b"]);
        assert_eq!(texts("a::b"), vec!["a", "::", "b"]);
        assert_eq!(texts("a != b"), vec!["a", "!=", "b"]);
        // `=>` must not be split into `=`/`>` (nor merged into `==`).
        assert_eq!(texts("x => y"), vec!["x", "=>", "y"]);
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        // Token-level lints must not see idents inside literals.
        let toks = texts("let s = \"HashMap == clone()\";");
        assert!(!toks.iter().any(|t| t == "HashMap"));
        let toks = texts("let c = 'a'; let lt: &'static str = r#\"unwrap()\"#;");
        assert!(!toks.iter().any(|t| t == "unwrap"));
        assert!(toks.iter().any(|t| t == "'static"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        let toks = texts("let q = '\\''; let x = 1;");
        assert!(toks.iter().any(|t| t == "x"));
    }

    #[test]
    fn comments_are_captured_with_ownership() {
        let lexed = lex("let a = 1; // trailing\n// own line\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[0].text, "// trailing");
    }

    #[test]
    fn block_comments_nest_and_are_skipped() {
        let toks = texts("a /* x /* y */ z */ b");
        assert_eq!(toks, vec!["a", "b"]);
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }
}
