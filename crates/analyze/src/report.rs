//! Diagnostic rendering: rustc-style text and hand-emitted JSON.
//!
//! The JSON encoder is deliberately hand-rolled — this crate is a CI gate and
//! must stay dependency-free (the workspace's serde is a vendored stub, and a
//! gate that depends on the code it checks is a circular trust problem).

use crate::lints::Finding;

/// The full result of an analyzer run.
#[derive(Debug)]
pub struct Report {
    /// Every finding across all scanned files (including allowed ones).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that are *not* suppressed by an allow annotation. A nonempty
    /// result means the gate fails.
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    /// Number of suppressed findings (each backed by a reasoned annotation).
    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed).count()
    }

    /// Renders rustc-style diagnostics:
    ///
    /// ```text
    /// error[nondet-iter]: `HashMap` in result-affecting crate `core`: ...
    ///   --> crates/core/src/sweep.rs:72:23
    ///    |
    /// 72 | use std::collections::HashMap;
    ///    |                       ^
    ///    = hint: use BTreeMap/BTreeSet or sort before iterating; ...
    /// ```
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.allowed && !verbose {
                continue;
            }
            let severity = if f.allowed { "allowed" } else { "error" };
            let line_label = f.line.to_string();
            let gutter = " ".repeat(line_label.len());
            out.push_str(&format!("{severity}[{}]: {}\n", f.lint, f.message));
            out.push_str(&format!("{gutter}--> {}:{}:{}\n", f.path, f.line, f.col));
            out.push_str(&format!("{gutter} |\n"));
            out.push_str(&format!("{line_label} | {}\n", f.excerpt));
            let caret_pad = " ".repeat(f.col.saturating_sub(1) as usize);
            out.push_str(&format!("{gutter} | {caret_pad}^\n"));
            out.push_str(&format!("{gutter} = hint: {}\n\n", f.hint));
        }
        let unallowed = self.unallowed().count();
        out.push_str(&format!(
            "gis-analyze: {} file(s) scanned, {} finding(s) ({} unallowlisted, {} allowed)\n",
            self.files_scanned,
            self.findings.len(),
            unallowed,
            self.allowed_count()
        ));
        out
    }

    /// Renders the machine-readable report consumed by the CI artifact step.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"unallowed_count\": {},\n",
            self.unallowed().count()
        ));
        out.push_str(&format!("  \"allowed_count\": {},\n", self.allowed_count()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"lint\": \"{}\", ", json_escape(f.lint)));
            out.push_str(&format!("\"path\": \"{}\", ", json_escape(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"col\": {}, ", f.col));
            out.push_str(&format!("\"allowed\": {}, ", f.allowed));
            out.push_str(&format!("\"message\": \"{}\", ", json_escape(&f.message)));
            out.push_str(&format!("\"hint\": \"{}\"", json_escape(&f.hint)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{analyze_file, Config};

    fn sample_report() -> Report {
        let findings = analyze_file(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n",
            &Config::default(),
        );
        Report {
            findings,
            files_scanned: 1,
        }
    }

    #[test]
    fn text_has_rustc_shape() {
        let text = sample_report().render_text(false);
        assert!(text.contains("error[nondet-iter]"));
        assert!(text.contains("--> crates/core/src/x.rs:1:23"));
        assert!(text.contains("= hint:"));
        assert!(text.contains("1 unallowlisted"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let json = sample_report().render_json();
        assert!(json.contains("\"unallowed_count\": 1"));
        assert!(json.contains("\"lint\": \"nondet-iter\""));
        // Escaping: backticks fine, quotes inside messages escaped.
        assert!(!json.contains("\"`HashMap\"")); // message is inside one string
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
