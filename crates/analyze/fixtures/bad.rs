// Deliberately-violating fixture: every lint must fire exactly where the
// `EXPECT:` markers say. Parsed by tests/self_test.rs, never compiled.
// The fixture is analyzed as `crates/fixture/src/bad.rs` under a config where
// `fixture` is result-affecting and this file is on the panic-audit list.

use std::collections::HashMap; // EXPECT: nondet-iter

pub struct Acc {
    sum_w: f64,
}

impl Acc {
    pub fn push(&mut self, w: f64) {
        self.sum_w += w; // EXPECT: naive-accum
    }

    pub fn merge(&mut self, other: &Acc) {
        self.sum_w += other.sum_w; // EXPECT: naive-accum
    }
}

/// gis-analyze: no_alloc
fn hot_path(buf: &[f64]) -> Vec<f64> {
    let copied = buf.to_vec(); // EXPECT: no-alloc
    let doubled: Vec<f64> = copied.iter().map(|x| x * 2.0).collect(); // EXPECT: no-alloc
    doubled
}

fn compare(x: f64) -> bool {
    x == 0.0 // EXPECT: float-eq
}

fn infinity_check(x: f64) -> bool {
    x != f64::INFINITY // EXPECT: float-eq
}

fn truncate(x: f64) -> usize {
    x.floor() as usize // EXPECT: float-cast
}

fn narrow(x: f64) -> f32 {
    x as f32 // EXPECT: float-cast
}

fn lookup(table: &HashMap<String, u64>, key: &str) -> u64 { // EXPECT: nondet-iter
    *table.get(key).unwrap() // EXPECT: panic-site
}

fn boom() {
    panic!("sweep path must not abort"); // EXPECT: panic-site
}

// EXPECT-NEXT: bad-annotation
// gis-analyze: allow(nondet-iter)
fn missing_reason() {}

// EXPECT-NEXT: bad-annotation
// gis-analyze: allow(made-up-lint, some reason)
fn unknown_lint() {}
