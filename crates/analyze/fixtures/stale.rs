// Stale-allowlist fixture: annotations that suppress nothing must themselves
// be findings, so suppressions cannot outlive the code they excused.
// Parsed by tests/self_test.rs, never compiled.

// EXPECT-NEXT: stale-allow
use std::collections::BTreeMap; // gis-analyze: allow(nondet-iter, the HashMap this excused is long gone)

// EXPECT-NEXT: stale-allow
// gis-analyze: allow(float-eq, comparison was rewritten with to_bits)
fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn lookup(table: &BTreeMap<String, u64>, key: &str) -> Option<u64> {
    table.get(key).copied()
}
