// Clean fixture: realistic code that uses every suppression form correctly.
// The analyzer must report zero unallowlisted findings here (allowed findings
// are fine — they are the point). Parsed by tests/self_test.rs, never
// compiled. Analyzed as `crates/fixture/src/clean.rs` under the same config
// as bad.rs.

use std::collections::BTreeMap;

pub struct Acc {
    sum_w: f64,
    mean: f64,
    m2: f64,
    count: u64,
}

impl Acc {
    pub fn push(&mut self, w: f64) {
        // Welford for the variance; the plain sum is justified and annotated.
        self.count += 1;
        let delta = w - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (w - self.mean);
        self.sum_w += w; // gis-analyze: allow(naive-accum, non-negative terms cannot cancel)
    }

    pub fn merge(&mut self, other: &Acc) {
        // gis-analyze: allow(naive-accum, merge of non-negative partial sums)
        self.sum_w += other.sum_w;
    }
}

/// Steady-state hot path: reuses `out`, allocates nothing.
/// gis-analyze: no_alloc
fn hot_path(buf: &[f64], out: &mut [f64]) {
    debug_assert!(buf.iter().copied().collect::<Vec<_>>().len() == out.len());
    for (o, b) in out.iter_mut().zip(buf) {
        *o = b * 2.0;
    }
}

fn guard(x: f64) -> f64 {
    if x == 0.0 { // gis-analyze: allow(float-eq, division guard against exact zero)
        return f64::INFINITY;
    }
    1.0 / x
}

fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn bucket(pos: f64) -> usize {
    pos.floor() as usize // gis-analyze: allow(float-cast, bracketing an in-range index)
}

fn lookup(table: &BTreeMap<String, u64>, key: &str) -> Option<u64> {
    table.get(key).copied()
}

fn audited(v: &[u64]) -> u64 {
    v.first().copied().expect("caller guarantees non-empty") // gis-analyze: allow(panic-site, invariant documented at the call site)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_do_anything() {
        let mut m = HashMap::new();
        m.insert("k", 1.0);
        assert!(*m.get("k").unwrap() == 1.0);
    }
}
