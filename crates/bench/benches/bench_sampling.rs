//! Criterion benchmark: throughput of the statistical primitives.
//!
//! Sampling and density evaluation dominate the framework overhead of every
//! estimator; these micro-benchmarks track them.

// Benchmark harness: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use gis_linalg::{Matrix, Vector};
use gis_stats::{latin_hypercube, normal, MultivariateNormal, RngStream};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_primitives");

    group.bench_function("standard_normal_vector_6d", |b| {
        let mut rng = RngStream::from_seed(1);
        b.iter(|| rng.standard_normal_vector(black_box(6)))
    });

    group.bench_function("mvn_sample_and_logpdf_6d", |b| {
        let mut rng = RngStream::from_seed(2);
        let shift = Vector::filled(6, 3.0);
        let dist = MultivariateNormal::shifted_standard(shift);
        b.iter(|| {
            let x = dist.sample(&mut rng);
            dist.log_pdf(black_box(&x)).expect("dimension matches")
        })
    });

    group.bench_function("correlated_mvn_sample_12d", |b| {
        let mut rng = RngStream::from_seed(3);
        let dim = 12;
        let cov = Matrix::from_fn(dim, dim, |i, j| if i == j { 1.0 } else { 0.3 });
        let dist = MultivariateNormal::new(Vector::zeros(dim), &cov).expect("SPD covariance");
        b.iter(|| dist.sample(&mut rng))
    });

    group.bench_function("latin_hypercube_1000x6", |b| {
        let mut rng = RngStream::from_seed(4);
        b.iter(|| latin_hypercube(&mut rng, black_box(1000), black_box(6)))
    });

    group.bench_function("normal_quantile", |b| {
        b.iter(|| normal::quantile(black_box(1e-7)))
    });

    group.bench_function("normal_upper_tail", |b| {
        b.iter(|| normal::upper_tail_probability(black_box(5.5)))
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
