//! Criterion benchmark: cost of one transient SRAM simulation.
//!
//! This is the unit cost every extraction method pays per sample on the
//! "SPICE-accurate" model; the per-table simulation counts translate into wall
//! clock through these numbers.

// Benchmark harness: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use gis_sram::{CellTransistor, SramTestbench};
use std::hint::black_box;

fn bench_read_transient(c: &mut Criterion) {
    let tb = SramTestbench::typical_45nm();
    let mut group = c.benchmark_group("transient");
    group.sample_size(20);
    group.bench_function("read_nominal", |b| {
        b.iter(|| tb.read(black_box(&[0.0; 6])).expect("read converges"))
    });

    let mut weak = [0.0; 6];
    weak[CellTransistor::PassGateLeft.index()] = 0.12;
    group.bench_function("read_weak_pass_gate", |b| {
        b.iter(|| tb.read(black_box(&weak)).expect("read converges"))
    });

    group.bench_function("write_nominal", |b| {
        b.iter(|| tb.write(black_box(&[0.0; 6])).expect("write converges"))
    });
    group.finish();
}

fn bench_surrogate(c: &mut Criterion) {
    let surrogate = gis_sram::SramSurrogate::typical_45nm();
    let deltas = [0.03, -0.01, 0.02, 0.0, 0.01, -0.02];
    let mut group = c.benchmark_group("surrogate");
    group.bench_function("read_access_time", |b| {
        b.iter(|| surrogate.read_access_time(black_box(&deltas)))
    });
    group.bench_function("write_delay", |b| {
        b.iter(|| surrogate.write_delay(black_box(&deltas)))
    });
    group.finish();
}

criterion_group!(benches, bench_read_transient, bench_surrogate);
criterion_main!(benches);
