//! Criterion benchmark: wall-clock cost of each extraction method on the
//! surrogate read-access-time problem at a fixed accuracy target.
//!
//! Complements the per-table simulation counts: it shows that the framework
//! overhead (proposal evaluation, weight bookkeeping) is negligible relative to
//! the simulator calls themselves.

// Benchmark harness: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use gis_bench::{problem_with_relative_spec, surrogate_read_model, MASTER_SEED};
use gis_core::{
    Estimator, GisConfig, GradientImportanceSampling, ImportanceSamplingConfig, MinimumNormIs,
    MnisConfig, MonteCarlo, MonteCarloConfig, ScaledSigmaSampling, SphericalSampling,
    SphericalSamplingConfig, SssConfig,
};
use gis_stats::RngStream;

fn sampling_config() -> ImportanceSamplingConfig {
    ImportanceSamplingConfig {
        max_samples: 10_000,
        batch_size: 500,
        target_relative_error: 0.1,
        min_failures: 30,
        corrected_stopping: true,
    }
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("methods_surrogate_read");
    group.sample_size(10);

    group.bench_function("gradient_is", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 1.8);
            let gis = GradientImportanceSampling::new(GisConfig {
                sampling: sampling_config(),
                ..GisConfig::default()
            });
            gis.estimate(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("minimum_norm_is", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 1.8);
            let mnis = MinimumNormIs::new(MnisConfig {
                sampling: sampling_config(),
                ..MnisConfig::default()
            });
            mnis.estimate(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("spherical_sampling", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 1.8);
            let spherical = SphericalSampling::new(SphericalSamplingConfig {
                directions: 500,
                ..SphericalSamplingConfig::default()
            });
            spherical.estimate(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("scaled_sigma_sampling", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 1.8);
            let sss = ScaledSigmaSampling::new(SssConfig {
                samples_per_scale: 2_000,
                ..SssConfig::default()
            });
            sss.estimate(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("monte_carlo_100k_budget", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 1.8);
            let mc = MonteCarlo::new(MonteCarloConfig {
                max_samples: 100_000,
                batch_size: 10_000,
                target_relative_error: 0.1,
                min_failures: 10,
                corrected_stopping: true,
            });
            mc.estimate(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
