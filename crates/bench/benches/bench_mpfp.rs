//! Criterion benchmark: cost of the failure-region search phase.
//!
//! Gradient MPFP search versus the blind presampling search of the minimum-norm
//! baseline, on an analytic limit state and on the SRAM surrogate. The gap in
//! wall clock mirrors the gap in simulation counts reported by Figure 6.

// Benchmark harness: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use gis_bench::{problem_with_relative_spec, surrogate_read_model, MASTER_SEED};
use gis_core::{
    FailureProblem, GradientMpfpSearch, LinearLimitState, MinimumNormIs, MnisConfig, MpfpConfig,
};
use gis_stats::RngStream;

fn analytic_problem() -> FailureProblem {
    FailureProblem::from_model(
        LinearLimitState::along_first_axis(6, 4.5),
        LinearLimitState::spec(),
    )
}

fn bench_mpfp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpfp_search");
    group.sample_size(20);

    group.bench_function("gradient_search_linear_6d", |b| {
        b.iter(|| {
            let problem = analytic_problem();
            let search = GradientMpfpSearch::new(MpfpConfig::default());
            search.search(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("presampling_search_linear_6d", |b| {
        b.iter(|| {
            let problem = analytic_problem();
            let mnis = MinimumNormIs::new(MnisConfig::default());
            mnis.search(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("gradient_search_surrogate_read", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 2.0);
            let search = GradientMpfpSearch::new(MpfpConfig::default());
            search.search(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.bench_function("presampling_search_surrogate_read", |b| {
        b.iter(|| {
            let model = surrogate_read_model();
            let nominal = model.nominal_metric();
            let problem = problem_with_relative_spec(model, nominal, 2.0);
            let mnis = MinimumNormIs::new(MnisConfig::default());
            mnis.search(&problem, &mut RngStream::from_seed(MASTER_SEED))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mpfp);
criterion_main!(benches);
