//! Figure 2 — Read and write transient waveforms of the 6T cell.
//!
//! Prints the wordline, bitline and storage-node waveforms for the nominal cell
//! and for a cell whose left pass gate is weakened by +3σ / strengthened by
//! −3σ, showing how threshold variation stretches the bitline discharge (read)
//! and the cell flip (write).
//!
//! Run with `cargo run --release -p gis-bench --bin fig2_waveforms`
//! (`-- --fast` dumps the nominal and +3σ corners only, for the CI smoke).

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{fast_mode, print_csv, write_json_artifact};
use gis_circuit::{transient_analysis, Circuit, SourceWaveform, TransientConfig};
use gis_sram::{build_6t_cell, CellTransistor, SramCellConfig, SramTestbench};
use gis_variation::PelgromModel;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct WaveformDump {
    label: String,
    times: Vec<f64>,
    wordline: Vec<f64>,
    bitline: Vec<f64>,
    q: Vec<f64>,
    q_bar: Vec<f64>,
}

/// Re-creates the read testbench circuit (same topology as `SramTestbench::read`)
/// so the full waveforms can be dumped, not just the measured numbers.
fn read_waveforms(label: &str, vth_deltas: &[f64; 6]) -> WaveformDump {
    let cell = SramCellConfig::typical_45nm();
    let tb = SramTestbench::typical_45nm();
    let timing = tb.timing();
    let vdd = cell.vdd;

    let mut ckt = Circuit::new();
    let nodes = build_6t_cell(&mut ckt, &cell, vth_deltas).expect("valid cell");
    ckt.add_voltage_source(
        "V_VDD",
        nodes.vdd,
        Circuit::ground(),
        SourceWaveform::dc(vdd),
    );
    ckt.add_voltage_source(
        "V_WL",
        nodes.wordline,
        Circuit::ground(),
        SourceWaveform::pulse(
            0.0,
            vdd,
            timing.wordline_delay,
            timing.wordline_edge,
            timing.wordline_width,
        ),
    );
    ckt.add_capacitor(
        "C_BL",
        nodes.bitline,
        Circuit::ground(),
        cell.bitline_capacitance,
    )
    .expect("valid capacitor");
    ckt.add_capacitor(
        "C_BLB",
        nodes.bitline_bar,
        Circuit::ground(),
        cell.bitline_capacitance,
    )
    .expect("valid capacitor");

    let mut ic = vec![0.0; ckt.num_nodes()];
    ic[nodes.vdd] = vdd;
    ic[nodes.bitline] = vdd;
    ic[nodes.bitline_bar] = vdd;
    ic[nodes.q_bar] = vdd;

    let cfg = TransientConfig::new(timing.stop_time, timing.time_step).with_initial_conditions(ic);
    let result = transient_analysis(&ckt, &cfg).expect("transient converges");

    WaveformDump {
        label: label.to_string(),
        times: result.times().to_vec(),
        wordline: result
            .node_voltage_samples(nodes.wordline)
            .unwrap()
            .to_vec(),
        bitline: result.node_voltage_samples(nodes.bitline).unwrap().to_vec(),
        q: result.node_voltage_samples(nodes.q).unwrap().to_vec(),
        q_bar: result.node_voltage_samples(nodes.q_bar).unwrap().to_vec(),
    }
}

fn main() {
    let cell = SramCellConfig::typical_45nm();
    let sigma_pg =
        PelgromModel::typical_45nm().sigma_vth(cell.pass_gate.width, cell.pass_gate.length);
    println!("pass-gate Vth sigma: {:.1} mV", sigma_pg * 1e3);

    let corners: &[(&str, f64)] = if fast_mode() {
        &[("nominal", 0.0), ("pass-gate +3sigma", 3.0)]
    } else {
        &[
            ("nominal", 0.0),
            ("pass-gate +3sigma", 3.0),
            ("pass-gate -3sigma", -3.0),
        ]
    };

    let mut dumps = Vec::new();
    for &(label, sigmas) in corners {
        let shift = sigmas * sigma_pg;
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PassGateLeft.index()] = shift;
        let dump = read_waveforms(label, &deltas);

        // Print a decimated CSV (every 10th point) for plotting.
        let rows: Vec<String> = dump
            .times
            .iter()
            .enumerate()
            .step_by(10)
            .map(|(i, t)| {
                format!(
                    "{:.4e},{:.4},{:.4},{:.4},{:.4}",
                    t, dump.wordline[i], dump.bitline[i], dump.q[i], dump.q_bar[i]
                )
            })
            .collect();
        print_csv(
            &format!("fig2_read_waveform_{label}"),
            "time_s,wordline_v,bitline_v,q_v,qbar_v",
            &rows,
        );
        dumps.push(dump);
    }

    // Summary measurements mirroring the figure annotations.
    let tb = SramTestbench::typical_45nm();
    for &(label, sigmas) in corners {
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PassGateLeft.index()] = sigmas * sigma_pg;
        let read = tb.read(&deltas).expect("read transient converges");
        let write = tb.write(&deltas).expect("write transient converges");
        println!(
            "{label:>20}: read access = {:.1} ps (sensed: {}), write delay = {:.1} ps (flipped: {}), disturb peak = {:.3} V",
            read.access_time * 1e12,
            read.sensed,
            write.write_delay * 1e12,
            write.flipped,
            read.disturb_peak
        );
    }

    write_json_artifact("fig2_waveforms", &dumps);
}
