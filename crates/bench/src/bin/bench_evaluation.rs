//! Evaluation-engine performance harness.
//!
//! Runs every estimator on the three canonical problem classes (linear limit
//! state, quadratic limit state, transient SRAM read) twice — once strictly
//! serial, once at the configured thread count — and records wall-time,
//! evaluations/second, and the parallel speedup. The determinism contract of
//! the batched evaluation engine is asserted on the way: both runs must
//! produce bit-identical estimates and identical evaluation counts.
//!
//! The workload per method is pinned (no early stopping), so the two runs do
//! exactly the same work and the speedup column is a clean wall-clock ratio.
//!
//! Output: `BENCH_evaluation.json` at the workspace root.
//!
//! Run with `cargo run --release -p gis-bench --bin bench_evaluation`
//! (`-- --fast` for a CI smoke run with reduced budgets). The parallel thread
//! count comes from `GIS_THREADS`, falling back to the machine's available
//! parallelism (capped at 8).

use gis_bench::{problem_with_relative_spec, transient_model, workspace_root, MASTER_SEED};
use gis_core::{
    standard_estimators, ConvergencePolicy, EstimatorOutcome, ExecutionConfig, FailureProblem,
    LinearLimitState, QuadraticLimitState, SramMetric, YieldAnalysis,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchEntry {
    problem: String,
    method: String,
    /// Worker threads of the parallel run.
    threads: usize,
    /// Metric evaluations performed (identical in both runs).
    evaluations: u64,
    /// Failure-probability estimate (bit-identical in both runs).
    failure_probability: f64,
    wall_time_seconds_1thread: f64,
    wall_time_seconds: f64,
    evaluations_per_second_1thread: f64,
    evaluations_per_second: f64,
    /// Wall-clock ratio serial / parallel.
    speedup_vs_1thread: f64,
    /// Whether the serial and parallel runs agreed bit for bit (must be true;
    /// recorded so a regression is visible in the artifact).
    bit_identical_across_threads: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    master_seed: u64,
    threads: usize,
    /// Physical parallelism of the machine the bench ran on. Speedups are
    /// bounded by this: on a single-core host `speedup_vs_1thread` hovers
    /// around 1.0 regardless of the configured thread count.
    available_parallelism: usize,
    fast_mode: bool,
    entries: Vec<BenchEntry>,
}

/// One benchmark problem plus the fixed evaluation budget its methods run to.
struct BenchProblem {
    name: &'static str,
    problem: FailureProblem,
    budget: u64,
}

fn bench_problems(fast: bool) -> Vec<BenchProblem> {
    let transient = transient_model(SramMetric::ReadAccessTime);
    let transient_nominal = transient.nominal_metric();
    vec![
        BenchProblem {
            name: "linear-6d-4sigma",
            problem: FailureProblem::from_model(
                LinearLimitState::along_first_axis(6, 4.0),
                LinearLimitState::spec(),
            ),
            budget: if fast { 5_000 } else { 50_000 },
        },
        BenchProblem {
            name: "quadratic-6d",
            problem: FailureProblem::from_model(
                QuadraticLimitState::new(6, 4.0, 0.05),
                QuadraticLimitState::spec(),
            ),
            budget: if fast { 5_000 } else { 50_000 },
        },
        BenchProblem {
            name: "sram-transient-read",
            // 1.3x the nominal access time: failures are reachable by every
            // method within a small simulation budget.
            problem: problem_with_relative_spec(transient, transient_nominal, 1.3),
            budget: if fast { 160 } else { 2_000 },
        },
    ]
}

/// Runs all estimators on one problem at a fixed thread count. The policy
/// disables early stopping (unreachable accuracy target) so both runs perform
/// the identical, budget-pinned workload.
fn run_all(bench: &BenchProblem, threads: usize) -> Vec<(String, EstimatorOutcome, f64)> {
    let report = YieldAnalysis::new()
        .master_seed(MASTER_SEED + 29)
        .convergence_policy(
            ConvergencePolicy::with_budget(bench.budget)
                .target_relative_error(1e-12)
                .min_failures(u64::MAX),
        )
        .execution(ExecutionConfig::with_threads(threads))
        .problem(bench.name, bench.problem.fork())
        .estimators(standard_estimators())
        .run();
    report.problems[0]
        .methods
        .iter()
        .map(|m| {
            (
                m.estimator.clone(),
                m.outcome.clone(),
                m.row.wall_time_seconds,
            )
        })
        .collect()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // An explicit GIS_THREADS wins outright (even when lower than the core
    // count); only an unset/invalid variable falls back to the machine's
    // parallelism, capped at 8.
    let threads = gis_core::exec::threads_from_env().unwrap_or_else(|| available.min(8));
    println!(
        "bench_evaluation: {threads} threads vs 1 thread \
         ({available} cores available, fast = {fast})"
    );

    let mut entries = Vec::new();
    for bench in bench_problems(fast) {
        let serial = run_all(&bench, 1);
        let parallel = run_all(&bench, threads);
        for ((method, outcome_1, wall_1), (_, outcome_n, wall_n)) in
            serial.into_iter().zip(parallel)
        {
            let identical = outcome_1.result.failure_probability.to_bits()
                == outcome_n.result.failure_probability.to_bits()
                && outcome_1.result.evaluations == outcome_n.result.evaluations
                && outcome_1.result.failures_observed == outcome_n.result.failures_observed;
            assert!(
                identical,
                "{}/{method}: parallel run diverged from the serial run",
                bench.name
            );
            let evaluations = outcome_1.result.evaluations;
            let entry = BenchEntry {
                problem: bench.name.to_string(),
                method,
                threads,
                evaluations,
                failure_probability: outcome_1.result.failure_probability,
                wall_time_seconds_1thread: wall_1,
                wall_time_seconds: wall_n,
                evaluations_per_second_1thread: evaluations as f64 / wall_1.max(1e-12),
                evaluations_per_second: evaluations as f64 / wall_n.max(1e-12),
                speedup_vs_1thread: wall_1 / wall_n.max(1e-12),
                bit_identical_across_threads: identical,
            };
            println!(
                "{:<22} {:<22} {:>8} evals | 1T {:>8.3}s | {}T {:>8.3}s | speedup {:>5.2}x",
                entry.problem,
                entry.method,
                entry.evaluations,
                entry.wall_time_seconds_1thread,
                entry.threads,
                entry.wall_time_seconds,
                entry.speedup_vs_1thread
            );
            entries.push(entry);
        }
    }

    let report = BenchReport {
        master_seed: MASTER_SEED + 29,
        threads,
        available_parallelism: available,
        fast_mode: fast,
        entries,
    };
    let path = workspace_root().join("BENCH_evaluation.json");
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&path, json).expect("bench report is writable");
    println!("[artifact] {}", path.display());
}
