//! Evaluation-engine performance harness.
//!
//! Runs every estimator on the four canonical problem classes (linear limit
//! state, quadratic limit state, transient SRAM read, transient SRAM write)
//! twice — once strictly serial, once at the configured thread count — and
//! records wall-time, evaluations/second, and the parallel speedup. The
//! determinism contract of the batched evaluation engine is asserted on the
//! way: both runs must produce bit-identical estimates and identical
//! evaluation counts.
//!
//! For the transient problems the harness additionally runs the **dense
//! reference kernel** serially and asserts that every estimator's failure
//! probability is bit-identical to the sparse production kernel — the
//! end-to-end guarantee of the sparse/workspace solver — and records the
//! kernel-vs-kernel speedup in the `*_dense` fields. The **lockstep** and
//! **fast** kernels get rows of their own (`kernel` = "lockstep"/"fast")
//! with `speedup_vs_sparse_kernel`/`bit_identical_vs_sparse_kernel` columns:
//! the lockstep kernel must reproduce the sparse estimates bit for bit
//! (asserted), while the fast lane is held to an estimate-agreement band and
//! a nominal-waveform tolerance instead. The `kernel` field makes
//! `BENCH_evaluation.json` a comparable perf trajectory across PRs.
//!
//! The workload per method is pinned (no early stopping), so all runs of one
//! method perform exactly the same work and every speedup column is a clean
//! wall-clock ratio. `speedup_vs_sparse_kernel` divides by a sparse baseline
//! re-measured immediately before each alt-kernel run (not the minutes-old
//! main-loop run), cancelling slow host drift out of the ratio.
//!
//! Output: `BENCH_evaluation.json` at the workspace root.
//!
//! Run with `cargo run --release -p gis-bench --bin bench_evaluation`
//! (`-- --fast` for a CI smoke run with reduced budgets). The parallel thread
//! count comes from `GIS_THREADS`, falling back to the machine's available
//! parallelism (capped at 8).

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    problem_with_relative_spec, transient_model_with_kernel, workspace_root, MASTER_SEED,
};
use gis_core::{
    standard_estimators, ConvergencePolicy, EstimatorOutcome, ExecutionConfig, FailureProblem,
    LinearLimitState, QuadraticLimitState, SramMetric, TransientKernel, YieldAnalysis,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct BenchEntry {
    problem: String,
    method: String,
    /// Production solver kernel under the model: "sparse" for the transient
    /// problems, "none" for analytic models with no circuit kernel. The
    /// dense reference kernel never gets rows of its own; its serial
    /// throughput lives in the `*_dense` fields of the sparse entries.
    kernel: String,
    /// Worker threads of the parallel run.
    threads: usize,
    /// Metric evaluations performed (identical in both runs).
    evaluations: u64,
    /// Failure-probability estimate (bit-identical in both runs).
    failure_probability: f64,
    wall_time_seconds_1thread: f64,
    wall_time_seconds: f64,
    evaluations_per_second_1thread: f64,
    evaluations_per_second: f64,
    /// Wall-clock ratio serial / parallel.
    speedup_vs_1thread: f64,
    /// Whether the serial and parallel runs agreed bit for bit (must be true;
    /// recorded so a regression is visible in the artifact).
    bit_identical_across_threads: bool,
    /// Dense-reference-kernel serial throughput (transient problems only).
    evaluations_per_second_dense: Option<f64>,
    /// Serial wall-clock ratio dense kernel / sparse kernel.
    speedup_vs_dense_kernel: Option<f64>,
    /// Whether the dense kernel reproduced the failure probability bit for
    /// bit (asserted; recorded for the artifact trail).
    bit_identical_vs_dense_kernel: Option<bool>,
    /// Serial wall-clock ratio sparse kernel / this kernel, on the
    /// "lockstep"/"fast" rows only: > 1 means this kernel is faster.
    speedup_vs_sparse_kernel: Option<f64>,
    /// Whether this kernel reproduced the sparse kernel's estimates bit for
    /// bit ("lockstep"/"fast" rows only). Asserted `true` for the lockstep
    /// kernel; expected `false` for the fast lane, which is instead held to
    /// an estimate-agreement band.
    bit_identical_vs_sparse_kernel: Option<bool>,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    master_seed: u64,
    threads: usize,
    /// Physical parallelism of the machine the bench ran on. Speedups are
    /// bounded by this: on a single-core host `speedup_vs_1thread` hovers
    /// around 1.0 regardless of the configured thread count.
    available_parallelism: usize,
    fast_mode: bool,
    entries: Vec<BenchEntry>,
}

/// One benchmark problem plus the fixed evaluation budget its methods run to.
struct BenchProblem {
    name: &'static str,
    problem: FailureProblem,
    /// Same workload on the dense reference kernel, where applicable.
    dense_problem: Option<FailureProblem>,
    kernel: &'static str,
    budget: u64,
    /// Additional kernels benchmarked as rows of their own, compared against
    /// the production kernel's serial run. The flag says whether the kernel
    /// must reproduce the production estimates bit for bit.
    alt_kernels: Vec<(&'static str, FailureProblem, bool)>,
}

fn transient_bench(name: &'static str, metric: SramMetric, fast: bool) -> (BenchProblem, f64, f64) {
    let sparse = transient_model_with_kernel(metric, TransientKernel::Sparse);
    let nominal = sparse.nominal_metric();
    let dense = transient_model_with_kernel(metric, TransientKernel::Dense);
    let lockstep = transient_model_with_kernel(metric, TransientKernel::Lockstep);
    let fast_lane = transient_model_with_kernel(metric, TransientKernel::Fast);
    // Fast-lane waveform tolerance, checked before any row is recorded: the
    // nominal metric of the fast kernel must track the exact kernel to within
    // one part in 1e6 (the documented per-waveform contract is < 1e-7 V on
    // node voltages, which translates to ~1e-6 relative on crossing-derived
    // metrics at these slew rates).
    let fast_nominal = fast_lane.nominal_metric();
    let nominal_deviation = ((fast_nominal - nominal) / nominal).abs();
    assert!(
        nominal_deviation < 1e-6,
        "{name}: fast-lane nominal metric deviates by {nominal_deviation:e}"
    );
    let problem = BenchProblem {
        name,
        // 1.3x the nominal metric: failures are reachable by every method
        // within a small simulation budget.
        problem: problem_with_relative_spec(sparse, nominal, 1.3),
        dense_problem: Some(problem_with_relative_spec(dense, nominal, 1.3)),
        kernel: "sparse",
        budget: if fast { 160 } else { 2_000 },
        alt_kernels: vec![
            (
                "lockstep",
                problem_with_relative_spec(lockstep, nominal, 1.3),
                true,
            ),
            (
                "fast",
                problem_with_relative_spec(fast_lane, nominal, 1.3),
                false,
            ),
        ],
    };
    (problem, nominal, nominal_deviation)
}

fn bench_problems(fast: bool) -> Vec<BenchProblem> {
    let (read, _, _) = transient_bench("sram-transient-read", SramMetric::ReadAccessTime, fast);
    let (write, _, _) = transient_bench("sram-transient-write", SramMetric::WriteDelay, fast);
    vec![
        BenchProblem {
            name: "linear-6d-4sigma",
            problem: FailureProblem::from_model(
                LinearLimitState::along_first_axis(6, 4.0),
                LinearLimitState::spec(),
            ),
            dense_problem: None,
            kernel: "none",
            budget: if fast { 5_000 } else { 50_000 },
            alt_kernels: Vec::new(),
        },
        BenchProblem {
            name: "quadratic-6d",
            problem: FailureProblem::from_model(
                QuadraticLimitState::new(6, 4.0, 0.05),
                QuadraticLimitState::spec(),
            ),
            dense_problem: None,
            kernel: "none",
            budget: if fast { 5_000 } else { 50_000 },
            alt_kernels: Vec::new(),
        },
        read,
        write,
    ]
}

/// Runs all estimators on one problem at a fixed thread count. The policy
/// disables early stopping (unreachable accuracy target) so every run
/// performs the identical, budget-pinned workload.
fn run_all(
    name: &str,
    problem: &FailureProblem,
    budget: u64,
    threads: usize,
) -> Vec<(String, EstimatorOutcome, f64)> {
    let report = YieldAnalysis::new()
        .master_seed(MASTER_SEED + 29)
        .convergence_policy(
            ConvergencePolicy::with_budget(budget)
                .target_relative_error(1e-12)
                .min_failures(u64::MAX),
        )
        .execution(ExecutionConfig::with_threads(threads))
        .problem(name, problem.fork())
        .estimators(standard_estimators())
        .run();
    report.problems[0]
        .methods
        .iter()
        .map(|m| {
            (
                m.estimator.clone(),
                m.outcome.clone(),
                m.row.wall_time_seconds,
            )
        })
        .collect()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // An explicit GIS_THREADS wins outright (even when lower than the core
    // count); only an unset/invalid variable falls back to the machine's
    // parallelism, capped at 8.
    let threads = gis_core::exec::threads_from_env().unwrap_or_else(|| available.min(8));
    println!(
        "bench_evaluation: {threads} threads vs 1 thread \
         ({available} cores available, fast = {fast})"
    );

    let mut entries = Vec::new();
    for bench in bench_problems(fast) {
        let serial = run_all(bench.name, &bench.problem, bench.budget, 1);
        let parallel = run_all(bench.name, &bench.problem, bench.budget, threads);
        // Dense reference kernel: same seeds, same budget, serial.
        let dense = bench
            .dense_problem
            .as_ref()
            .map(|p| run_all(bench.name, p, bench.budget, 1));
        for (index, ((method, outcome_1, wall_1), (_, outcome_n, wall_n))) in
            serial.iter().cloned().zip(parallel).enumerate()
        {
            let identical = outcome_1.result.failure_probability.to_bits()
                == outcome_n.result.failure_probability.to_bits()
                && outcome_1.result.evaluations == outcome_n.result.evaluations
                && outcome_1.result.failures_observed == outcome_n.result.failures_observed;
            assert!(
                identical,
                "{}/{method}: parallel run diverged from the serial run",
                bench.name
            );
            let evaluations = outcome_1.result.evaluations;

            let mut dense_rate = None;
            let mut dense_speedup = None;
            let mut dense_identical = None;
            if let Some(dense_runs) = &dense {
                let (dense_method, dense_outcome, dense_wall) = &dense_runs[index];
                assert_eq!(*dense_method, method, "kernel run ordering diverged");
                let matches = dense_outcome.result.failure_probability.to_bits()
                    == outcome_1.result.failure_probability.to_bits()
                    && dense_outcome.result.evaluations == evaluations;
                assert!(
                    matches,
                    "{}/{method}: dense kernel diverged from the sparse kernel \
                     ({:e} vs {:e})",
                    bench.name,
                    dense_outcome.result.failure_probability,
                    outcome_1.result.failure_probability,
                );
                dense_rate = Some(evaluations as f64 / dense_wall.max(1e-12));
                dense_speedup = Some(dense_wall / wall_1.max(1e-12));
                dense_identical = Some(matches);
            }

            let entry = BenchEntry {
                problem: bench.name.to_string(),
                method,
                kernel: bench.kernel.to_string(),
                threads,
                evaluations,
                failure_probability: outcome_1.result.failure_probability,
                wall_time_seconds_1thread: wall_1,
                wall_time_seconds: wall_n,
                evaluations_per_second_1thread: evaluations as f64 / wall_1.max(1e-12),
                evaluations_per_second: evaluations as f64 / wall_n.max(1e-12),
                speedup_vs_1thread: wall_1 / wall_n.max(1e-12),
                bit_identical_across_threads: identical,
                evaluations_per_second_dense: dense_rate,
                speedup_vs_dense_kernel: dense_speedup,
                bit_identical_vs_dense_kernel: dense_identical,
                speedup_vs_sparse_kernel: None,
                bit_identical_vs_sparse_kernel: None,
            };
            match entry.speedup_vs_dense_kernel {
                Some(dense_speedup) => println!(
                    "{:<22} {:<22} {:>8} evals | 1T {:>8.3}s | {}T {:>8.3}s | vs dense {:>5.2}x",
                    entry.problem,
                    entry.method,
                    entry.evaluations,
                    entry.wall_time_seconds_1thread,
                    entry.threads,
                    entry.wall_time_seconds,
                    dense_speedup
                ),
                None => println!(
                    "{:<22} {:<22} {:>8} evals | 1T {:>8.3}s | {}T {:>8.3}s | speedup {:>5.2}x",
                    entry.problem,
                    entry.method,
                    entry.evaluations,
                    entry.wall_time_seconds_1thread,
                    entry.threads,
                    entry.wall_time_seconds,
                    entry.speedup_vs_1thread
                ),
            }
            entries.push(entry);
        }

        // The lockstep and fast kernels: same pinned workload, rows of their
        // own, compared against the sparse serial run above. The *timing*
        // baseline is a fresh sparse serial run taken immediately before each
        // alt-kernel run: on a busy single-core host, wall-clock drifts by
        // tens of percent over the minutes this binary runs, and a ratio of
        // adjacent measurements cancels that drift where a ratio against the
        // minutes-old sparse run would mostly measure the host. Correctness
        // assertions still compare against the original sparse outcomes.
        for (alt_kernel, alt_problem, must_match) in &bench.alt_kernels {
            let sparse_adjacent = run_all(bench.name, &bench.problem, bench.budget, 1);
            let alt_serial = run_all(bench.name, alt_problem, bench.budget, 1);
            let alt_parallel = run_all(bench.name, alt_problem, bench.budget, threads);
            for (index, ((method, outcome_1, wall_1), (_, outcome_n, wall_n))) in
                alt_serial.into_iter().zip(alt_parallel).enumerate()
            {
                let identical = outcome_1.result.failure_probability.to_bits()
                    == outcome_n.result.failure_probability.to_bits()
                    && outcome_1.result.evaluations == outcome_n.result.evaluations
                    && outcome_1.result.failures_observed == outcome_n.result.failures_observed;
                assert!(
                    identical,
                    "{}/{method} [{alt_kernel}]: parallel run diverged from the serial run",
                    bench.name
                );
                let (sparse_method, sparse_outcome, _) = &serial[index];
                assert_eq!(*sparse_method, method, "kernel run ordering diverged");
                let (adjacent_method, adjacent_outcome, sparse_wall) = &sparse_adjacent[index];
                assert_eq!(*adjacent_method, method, "kernel run ordering diverged");
                assert_eq!(
                    adjacent_outcome.result.failure_probability.to_bits(),
                    sparse_outcome.result.failure_probability.to_bits(),
                    "{}/{method}: the re-measured sparse baseline diverged from the \
                     original sparse run",
                    bench.name
                );
                let evaluations = outcome_1.result.evaluations;
                assert_eq!(
                    evaluations, sparse_outcome.result.evaluations,
                    "{}/{method} [{alt_kernel}]: the workload must stay budget-pinned",
                    bench.name
                );
                let matches_sparse = outcome_1.result.failure_probability.to_bits()
                    == sparse_outcome.result.failure_probability.to_bits();
                if *must_match {
                    assert!(
                        matches_sparse,
                        "{}/{method}: the {alt_kernel} kernel must reproduce the sparse \
                         kernel bit for bit ({:e} vs {:e})",
                        bench.name,
                        outcome_1.result.failure_probability,
                        sparse_outcome.result.failure_probability,
                    );
                } else {
                    // Fast lane: deterministic but not bit-identical; the
                    // estimate must stay inside a 5% agreement band (in
                    // practice the estimates match exactly unless a sample
                    // sits within the fast lane's ~1e-6 metric tolerance of
                    // the spec threshold).
                    let a = outcome_1.result.failure_probability;
                    let b = sparse_outcome.result.failure_probability;
                    let agree = a == b || (a - b).abs() <= 0.05 * b.abs().max(a.abs());
                    assert!(
                        agree,
                        "{}/{method}: the {alt_kernel} kernel's estimate left the \
                         agreement band ({a:e} vs {b:e})",
                        bench.name
                    );
                }
                let entry = BenchEntry {
                    problem: bench.name.to_string(),
                    method,
                    kernel: alt_kernel.to_string(),
                    threads,
                    evaluations,
                    failure_probability: outcome_1.result.failure_probability,
                    wall_time_seconds_1thread: wall_1,
                    wall_time_seconds: wall_n,
                    evaluations_per_second_1thread: evaluations as f64 / wall_1.max(1e-12),
                    evaluations_per_second: evaluations as f64 / wall_n.max(1e-12),
                    speedup_vs_1thread: wall_1 / wall_n.max(1e-12),
                    bit_identical_across_threads: identical,
                    evaluations_per_second_dense: None,
                    speedup_vs_dense_kernel: None,
                    bit_identical_vs_dense_kernel: None,
                    speedup_vs_sparse_kernel: Some(sparse_wall / wall_1.max(1e-12)),
                    bit_identical_vs_sparse_kernel: Some(matches_sparse),
                };
                println!(
                    "{:<22} {:<22} {:>8} evals | 1T {:>8.3}s | {}T {:>8.3}s | vs sparse {:>5.2}x [{}]",
                    entry.problem,
                    entry.method,
                    entry.evaluations,
                    entry.wall_time_seconds_1thread,
                    entry.threads,
                    entry.wall_time_seconds,
                    sparse_wall / wall_1.max(1e-12),
                    entry.kernel
                );
                entries.push(entry);
            }
        }
    }

    let report = BenchReport {
        master_seed: MASTER_SEED + 29,
        threads,
        available_parallelism: available,
        fast_mode: fast,
        entries,
    };
    let path = workspace_root().join("BENCH_evaluation.json");
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&path, json).expect("bench report is writable");
    println!("[artifact] {}", path.display());
}
