//! Table 1 — Read-access-time failure extraction on the transient 6T testbench.
//!
//! Compares the proposed Gradient Importance Sampling against the minimum-norm
//! IS, spherical-sampling and scaled-sigma-sampling baselines on the same
//! failure problem: the read access time of the 45 nm 6T cell exceeding its
//! specification (a fixed multiple of the nominal access time). Every method is
//! charged for all simulator calls it makes, including its search phase.
//!
//! All four methods run through the unified [`gis_core::YieldAnalysis`]
//! driver, which derives a deterministic seed per method from the master seed.
//!
//! Run with `cargo run --release -p gis-bench --bin table1_read_failure`.
//! With `--connect HOST:PORT` the identical configuration is shipped to a
//! running `gis-serve` daemon instead (the estimator configs below travel
//! over the wire in full fidelity), and the returned rows are bit-identical
//! to the local path — unless the local run opted into `GIS_FAST_LANE`,
//! which the daemon deliberately does not honor.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    connect_addr, print_comparison_table, problem_with_relative_spec, scaled, submit_served_job,
    transient_model, write_json_artifact, MASTER_SEED,
};
use gis_core::{
    GisConfig, ImportanceSamplingConfig, MnisConfig, SphericalSamplingConfig, SramMetric,
    SssConfig, YieldAnalysis,
};
use gis_serve::{EstimatorSpec, JobSpec, ProblemSpec};

fn main() {
    let spec_factor = 2.0;
    let model = transient_model(SramMetric::ReadAccessTime);
    let nominal = model.nominal_metric();
    println!("nominal read access time: {:.4e} s", nominal);
    println!(
        "specification (upper limit): {:.4e} s ({spec_factor}x nominal)",
        nominal * spec_factor
    );

    let sampling = ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: scaled(4_000, 400),
        batch_size: scaled(250, 100),
        target_relative_error: 0.1,
        min_failures: scaled(30, 10),
    };
    // One spec list drives both paths: built locally for a direct run,
    // shipped verbatim to the daemon in thin-client mode.
    let estimators = vec![
        EstimatorSpec::GradientIs {
            config: GisConfig {
                sampling: sampling.clone(),
                ..GisConfig::default()
            },
        },
        EstimatorSpec::MinimumNormIs {
            config: MnisConfig {
                presamples_per_round: scaled(1_500, 300),
                presample_scales: vec![2.0, 2.5, 3.0],
                sampling,
                ..MnisConfig::default()
            },
        },
        EstimatorSpec::SphericalSampling {
            config: SphericalSamplingConfig {
                corrected_stopping: true,
                directions: scaled(200, 30),
                max_radius: 8.0,
                bisection_steps: 12,
                target_relative_error: 0.1,
                min_failing_directions: scaled(10, 5),
            },
        },
        EstimatorSpec::ScaledSigmaSampling {
            config: SssConfig {
                scales: scaled(vec![1.6, 2.0, 2.4, 2.8, 3.2], vec![1.6, 2.4, 3.2]),
                samples_per_scale: scaled(1_600, 150),
                min_failures_per_scale: scaled(10, 5),
            },
        },
    ];

    let report = if let Some(addr) = connect_addr() {
        let job = JobSpec {
            problem: ProblemSpec::TransientSram {
                metric: SramMetric::ReadAccessTime,
                spec_factor,
                timing: None,
            },
            estimators,
            master_seed: MASTER_SEED,
            policy: None,
            warm_start: None,
            deadline_ms: None,
        };
        submit_served_job(&addr, &job).report
    } else {
        YieldAnalysis::new()
            .master_seed(MASTER_SEED)
            .problem(
                "read-access-time",
                problem_with_relative_spec(model, nominal, spec_factor),
            )
            .estimators(estimators.iter().map(|spec| spec.build()).collect())
            .run()
    };

    let problem_report = &report.problems[0];
    if let Some(mpfp) = problem_report
        .method("gradient-is")
        .and_then(|m| m.outcome.mpfp())
    {
        println!(
            "[gradient-is] MPFP beta = {:.3} sigma after {} search simulations",
            mpfp.beta, mpfp.evaluations
        );
    }
    if let Some(search) = problem_report
        .method("minimum-norm-is")
        .and_then(|m| m.outcome.search())
    {
        println!(
            "[minimum-norm-is] search beta = {:.3} sigma after {} simulations",
            search.beta, search.evaluations
        );
    }
    if let Some(points) = problem_report
        .method("scaled-sigma-sampling")
        .and_then(|m| m.outcome.scale_points())
    {
        for p in points {
            println!(
                "[scaled-sigma] s = {:.1}: {} / {} failures (P = {:.3e})",
                p.scale, p.failures, p.samples, p.probability
            );
        }
    }

    let rows = problem_report.rows();
    print_comparison_table(
        "Table 1: 6T read-access-time failure (transient testbench)",
        &rows,
    );
    println!(
        "\nBrute-force Monte Carlo reference cost (10% rel. error) at the GIS estimate: {:.3e} simulations",
        gis_core::required_samples(rows[0].failure_probability.clamp(1e-12, 0.5), 0.1)
    );
    write_json_artifact("table1_read_failure", &report);
}
