//! Figure 6 — Evolution of the gradient MPFP search.
//!
//! Prints the per-iteration trace (distance from the origin β, failure margin,
//! gradient norm, cumulative simulations) of the gradient search on three
//! problems: an analytic limit state with a known answer, the surrogate
//! read-access-time problem, and the transient write-delay problem. The
//! comparison with the blind presampling search of the minimum-norm baseline
//! shows where the gradient information pays off.
//!
//! Run with `cargo run --release -p gis-bench --bin fig6_mpfp_trace`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    print_csv, problem_with_relative_spec, scaled, surrogate_read_model, transient_model,
    write_json_artifact, MASTER_SEED,
};
use gis_core::{
    FailureProblem, GradientMpfpSearch, LinearLimitState, MinimumNormIs, MnisConfig, MpfpConfig,
    SramMetric,
};
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct MpfpTrace {
    problem: String,
    iterations: Vec<usize>,
    beta: Vec<f64>,
    margin: Vec<f64>,
    gradient_norm: Vec<f64>,
    evaluations: Vec<u64>,
    final_beta: f64,
    total_evaluations: u64,
    mnis_search_beta: f64,
    mnis_search_evaluations: u64,
}

fn trace_problem(name: &str, problem: &FailureProblem, seed: u64) -> MpfpTrace {
    let search = GradientMpfpSearch::new(MpfpConfig::default());
    let mut rng = RngStream::from_seed(seed);
    let result = search.search(&problem.fork(), &mut rng);

    // The derivative-free competitor's search phase on the same problem.
    let mnis = MinimumNormIs::new(MnisConfig {
        presamples_per_round: scaled(2_000, 300),
        ..MnisConfig::default()
    });
    let mnis_search = mnis.search(&problem.fork(), &mut RngStream::from_seed(seed + 1));

    let rows: Vec<String> = result
        .trace
        .iter()
        .map(|it| {
            format!(
                "{},{:.4},{:.4e},{:.4e},{}",
                it.iteration, it.beta, it.margin, it.gradient_norm, it.evaluations
            )
        })
        .collect();
    print_csv(
        &format!("fig6_mpfp_trace_{name}"),
        "iteration,beta,margin,gradient_norm,evaluations",
        &rows,
    );
    println!(
        "{name:>22}: gradient search beta = {:.3} in {} sims | presampling search beta = {:.3} in {} sims",
        result.beta, result.evaluations, mnis_search.beta, mnis_search.evaluations
    );

    MpfpTrace {
        problem: name.to_string(),
        iterations: result.trace.iter().map(|t| t.iteration).collect(),
        beta: result.trace.iter().map(|t| t.beta).collect(),
        margin: result.trace.iter().map(|t| t.margin).collect(),
        gradient_norm: result.trace.iter().map(|t| t.gradient_norm).collect(),
        evaluations: result.trace.iter().map(|t| t.evaluations).collect(),
        final_beta: result.beta,
        total_evaluations: result.evaluations,
        mnis_search_beta: mnis_search.beta,
        mnis_search_evaluations: mnis_search.evaluations,
    }
}

fn main() {
    let mut traces = Vec::new();

    // Analytic 4.5-sigma limit state: the answer is known (beta = 4.5).
    let analytic = FailureProblem::from_model(
        LinearLimitState::along_first_axis(6, 4.5),
        LinearLimitState::spec(),
    );
    traces.push(trace_problem(
        "linear_4p5_sigma",
        &analytic,
        MASTER_SEED + 20,
    ));

    // Surrogate read problem.
    let read = surrogate_read_model();
    let read_nominal = read.nominal_metric();
    let read_problem = problem_with_relative_spec(read, read_nominal, 2.0);
    traces.push(trace_problem(
        "surrogate_read",
        &read_problem,
        MASTER_SEED + 21,
    ));

    // Transient write problem (each gradient evaluation is a real simulation).
    let write = transient_model(SramMetric::WriteDelay);
    let write_nominal = write.nominal_metric();
    let write_problem = problem_with_relative_spec(write, write_nominal, 3.0);
    traces.push(trace_problem(
        "transient_write",
        &write_problem,
        MASTER_SEED + 22,
    ));

    write_json_artifact("fig6_mpfp_trace", &traces);
}
