//! Table 3 — Scaling of each method with the number of variation parameters.
//!
//! The 6 cell transistors are augmented with padded peripheral parameters
//! (column mux, sense amplifier, write driver devices sharing the path) to
//! produce problems of dimension 6, 12, 24 and 48. Every method runs against
//! the same accuracy target on the surrogate model; the table reports the
//! number of simulations each needed (or spent before giving up).
//!
//! Run with `cargo run --release -p gis-bench --bin table3_dimensionality`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{problem_with_relative_spec, scaled, write_json_artifact, MASTER_SEED};
use gis_core::{
    default_sram_variation_space, Estimator, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, MinimumNormIs, MnisConfig, SphericalSampling,
    SphericalSamplingConfig, SramMetric, SramSurrogateModel,
};
use gis_sram::{SramCellConfig, SramSurrogate};
use gis_stats::RngStream;
use gis_variation::PelgromModel;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct DimensionalityRow {
    dimension: usize,
    method: String,
    failure_probability: f64,
    sigma_level: f64,
    evaluations: u64,
    converged: bool,
}

fn padded_model(extra: usize) -> SramSurrogateModel {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    SramSurrogateModel::new(
        SramSurrogate::typical_45nm(),
        space,
        SramMetric::ReadAccessTime,
    )
    .with_padded_dimensions(extra, 0.02)
}

fn main() {
    let spec_factor = 2.0;
    let dimensions: &[usize] = scaled(&[6, 12, 24, 48], &[6, 12]);
    let master = RngStream::from_seed(MASTER_SEED + 3);
    let mut rows: Vec<DimensionalityRow> = Vec::new();

    println!(
        "{:<6} {:<20} {:>12} {:>8} {:>12} {:>10}",
        "dim", "method", "P_fail", "sigma", "#sims", "converged"
    );

    for (index, &dim) in dimensions.iter().enumerate() {
        let extra = dim - 6;
        let model = padded_model(extra);
        let nominal = model.nominal_metric();
        let problem = problem_with_relative_spec(model, nominal, spec_factor);

        // Gradient IS.
        {
            let fork = problem.fork();
            let gis = GradientImportanceSampling::new(GisConfig {
                sampling: ImportanceSamplingConfig {
                    corrected_stopping: true,
                    max_samples: scaled(100_000, 10_000),
                    batch_size: 1_000,
                    target_relative_error: 0.1,
                    min_failures: 30,
                },
                ..GisConfig::default()
            });
            let outcome = gis.estimate(&fork, &mut master.split((index * 10 + 1) as u64));
            rows.push(DimensionalityRow {
                dimension: dim,
                method: "gradient-is".to_string(),
                failure_probability: outcome.result.failure_probability,
                sigma_level: outcome.result.sigma_level,
                evaluations: outcome.result.evaluations,
                converged: outcome.result.converged,
            });
        }

        // Minimum-norm IS: presampling cost grows with dimension.
        {
            let fork = problem.fork();
            let mnis = MinimumNormIs::new(MnisConfig {
                presamples_per_round: 1_000 * (dim / 6).max(1),
                presample_scales: vec![2.0, 2.5, 3.0, 3.5],
                sampling: ImportanceSamplingConfig {
                    corrected_stopping: true,
                    max_samples: scaled(100_000, 10_000),
                    batch_size: 1_000,
                    target_relative_error: 0.1,
                    min_failures: 30,
                },
                ..MnisConfig::default()
            });
            let result = mnis
                .estimate(&fork, &mut master.split((index * 10 + 2) as u64))
                .result;
            rows.push(DimensionalityRow {
                dimension: dim,
                method: "minimum-norm-is".to_string(),
                failure_probability: result.failure_probability,
                sigma_level: result.sigma_level,
                evaluations: result.evaluations,
                converged: result.converged,
            });
        }

        // Spherical sampling: the failing cone shrinks with dimension.
        {
            let fork = problem.fork();
            let spherical = SphericalSampling::new(SphericalSamplingConfig {
                corrected_stopping: true,
                directions: scaled(3_000, 300),
                max_radius: 8.0,
                bisection_steps: 12,
                target_relative_error: 0.1,
                min_failing_directions: 10,
            });
            let result = spherical
                .estimate(&fork, &mut master.split((index * 10 + 3) as u64))
                .result;
            rows.push(DimensionalityRow {
                dimension: dim,
                method: "spherical-sampling".to_string(),
                failure_probability: result.failure_probability,
                sigma_level: result.sigma_level,
                evaluations: result.evaluations,
                converged: result.converged,
            });
        }

        for row in rows.iter().filter(|r| r.dimension == dim) {
            println!(
                "{:<6} {:<20} {:>12.4e} {:>8.3} {:>12} {:>10}",
                row.dimension,
                row.method,
                row.failure_probability,
                row.sigma_level,
                row.evaluations,
                row.converged
            );
        }
    }

    write_json_artifact("table3_dimensionality", &rows);
}
