//! Scenario-sweep harness: matrix-parallel orchestration with durable
//! checkpoint/resume over an operating-condition grid.
//!
//! Builds a [`gis_core::SweepPlan`] spanning process corners × supply
//! voltages × temperatures × Pelgrom coefficients × metrics, runs every
//! (scenario, estimator) cell through [`gis_core::SweepRunner`], and writes
//! `results/SWEEP_report.json` with the full report, the per-cell summary
//! (sigma levels against the array-capacity targets) and the final status.
//!
//! Flags:
//!
//! * `--fast` — CI-sized grid and budgets.
//! * `--status` — print checkpoint progress and exit without running.
//! * `--fresh` — delete the checkpoint before running.
//! * `--max-cells N` — stop after N new cells (simulates a killed run; the
//!   checkpoint keeps what finished).
//! * `--verify-resume` — after the (possibly resumed) run completes, re-run
//!   the whole sweep uninterrupted in memory and assert the two reports are
//!   exactly equal. This is the CI gate for the checkpoint/resume contract.
//! * `--checkpoint PATH` — checkpoint file (default
//!   `results/sweep_checkpoint.jsonl`).
//! * `--connect HOST:PORT` — thin-client mode: ship the identical sweep as
//!   a job to a running `gis-serve` daemon instead of executing locally.
//!   The streamed rows are bit-identical to the direct path (the daemon
//!   derives every per-cell seed from the same master seed and policy), so
//!   the summary and `SWEEP_report.json` artifact are unchanged.
//!   Incompatible with the checkpoint flags — the daemon owns durability.
//!
//! The kill-and-resume smoke in CI is:
//! `bench_sweep --fast --fresh --max-cells 7` (partial, "killed"), then
//! `bench_sweep --fast --verify-resume` (resumes and proves equality).

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    parse_flag_value, results_dir, submit_served_job, write_json_artifact, MASTER_SEED,
};
use gis_core::sweep::clear_checkpoint;
use gis_core::{
    standard_estimators, AnalysisReport, ConvergencePolicy, ExecutionConfig, SramMetric, SweepPlan,
    SweepRunner, SweepStatus, SweepSummaryRow, YieldAnalysis,
};
use gis_serve::{EstimatorSpec, JobSpec, ProblemSpec};
use gis_variation::GlobalCorner;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct SweepArtifact {
    master_seed: u64,
    fast_mode: bool,
    matrix_threads: usize,
    status: SweepStatus,
    sigma_requirements: Vec<(String, f64)>,
    summary: Vec<SweepSummaryRow>,
    report: AnalysisReport,
}

fn plan(fast: bool) -> SweepPlan {
    let plan = SweepPlan::new()
        .spec_factor(1.5)
        .capacity_target("16Mb+8r", 16 * 1024 * 1024, 8, 0.99)
        .capacity_target("256Mb+64r", 256 * 1024 * 1024, 64, 0.99);
    if fast {
        plan.corners([GlobalCorner::TypicalTypical, GlobalCorner::SlowSlow])
            .supply_voltages([0.9, 1.0])
    } else {
        plan.corners(GlobalCorner::all())
            .supply_voltages([0.9, 1.0])
            .temperatures([-40.0, 25.0, 125.0])
            .metrics([SramMetric::ReadAccessTime, SramMetric::WriteDelay])
    }
}

fn policy(fast: bool) -> ConvergencePolicy {
    ConvergencePolicy::with_budget(if fast { 2_000 } else { 20_000 })
        .target_relative_error(0.1)
        .min_failures(20)
}

fn analysis(plan: &SweepPlan, fast: bool) -> YieldAnalysis {
    plan.analysis()
        .master_seed(MASTER_SEED + 41)
        .convergence_policy(policy(fast))
        .estimators(standard_estimators())
}

/// Thin-client mode: ship the sweep to a `gis-serve` daemon as a job. The
/// plan itself travels over the wire (it is fully serializable), the daemon
/// rebuilds the identical scenario problems, and the returned rows feed the
/// same summary/artifact path as a local run.
fn run_served(addr: &str, plan: &SweepPlan, fast: bool, matrix: &ExecutionConfig) {
    let job = JobSpec {
        problem: ProblemSpec::Plan { plan: plan.clone() },
        estimators: EstimatorSpec::standard(),
        master_seed: MASTER_SEED + 41,
        policy: Some(policy(fast)),
    };
    let receipt = submit_served_job(addr, &job);

    let total = receipt.cells_executed + receipt.cells_cached;
    let summary = plan.summarize(&receipt.report);
    print_summary(&summary, &plan.sigma_requirements());
    let artifact = SweepArtifact {
        master_seed: MASTER_SEED + 41,
        fast_mode: fast,
        matrix_threads: matrix.resolved_threads(),
        // Served runs have no local checkpoint; cache hits play the role of
        // restored cells in the artifact's status block.
        status: SweepStatus {
            total_cells: total,
            completed_cells: total,
            restored_cells: receipt.cells_cached,
            discarded_records: 0,
            pending: Vec::new(),
        },
        sigma_requirements: plan.sigma_requirements(),
        summary,
        report: receipt.report,
    };
    write_json_artifact("SWEEP_report", &artifact);
}

fn print_status(status: &SweepStatus) {
    println!(
        "sweep status: {}/{} cells complete ({:.0}%), {} restored from checkpoint, \
         {} records discarded, {} pending",
        status.completed_cells,
        status.total_cells,
        100.0 * status.fraction_complete(),
        status.restored_cells,
        status.discarded_records,
        status.pending.len()
    );
}

fn print_summary(rows: &[SweepSummaryRow], requirements: &[(String, f64)]) {
    println!(
        "\n{:<42} {:<22} {:>12} {:>7} {}",
        "scenario",
        "method",
        "P_fail",
        "sigma",
        requirements
            .iter()
            .map(|(n, s)| format!("{n} (≥{s:.2}σ)"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let margins = row
            .capacity_margins
            .iter()
            .map(|m| {
                format!(
                    "{} {:+.2}σ",
                    if m.meets { "pass" } else { "FAIL" },
                    m.margin_sigma
                )
            })
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:<42} {:<22} {:>12.3e} {:>7.3} {}",
            row.problem, row.estimator, row.failure_probability, row.sigma_level, margins
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let fresh = args.iter().any(|a| a == "--fresh");
    let status_only = args.iter().any(|a| a == "--status");
    let verify_resume = args.iter().any(|a| a == "--verify-resume");
    let max_cells = parse_flag_value(&args, "--max-cells")
        .map(|v| v.parse::<usize>().expect("--max-cells takes a number"));
    let checkpoint = parse_flag_value(&args, "--checkpoint")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("sweep_checkpoint.jsonl"));

    let connect = parse_flag_value(&args, "--connect");

    let plan = plan(fast);
    let matrix = ExecutionConfig::from_env();

    if let Some(addr) = connect {
        assert!(
            !fresh && !status_only && !verify_resume && max_cells.is_none(),
            "--connect is incompatible with the local checkpoint flags"
        );
        println!(
            "bench_sweep: {} scenarios x 5 estimators, served by {addr}",
            plan.scenarios().len()
        );
        run_served(&addr, &plan, fast, &matrix);
        return;
    }

    println!(
        "bench_sweep: {} scenarios x 5 estimators, matrix threads {}, checkpoint {}",
        plan.scenarios().len(),
        matrix.resolved_threads(),
        checkpoint.display()
    );

    if fresh {
        clear_checkpoint(&checkpoint).expect("checkpoint is clearable");
    }

    let mut runner = SweepRunner::new().matrix(matrix).checkpoint(&checkpoint);
    if let Some(budget) = max_cells {
        runner = runner.cell_budget(budget);
    }

    if status_only {
        let status = runner.status(&mut analysis(&plan, fast));
        print_status(&status);
        return;
    }

    let outcome = runner.run(&mut analysis(&plan, fast));
    print_status(&outcome.status);

    let Some(report) = outcome.report else {
        println!(
            "sweep paused by --max-cells; re-run without it to resume from {}",
            checkpoint.display()
        );
        return;
    };

    if verify_resume {
        // Prove the checkpoint-resume contract: an uninterrupted in-memory
        // run of the identical sweep must equal the (restored + fresh)
        // report bit for bit (PartialEq ignores wall-clock metadata only).
        let uninterrupted = analysis(&plan, fast).run();
        assert_eq!(
            report, uninterrupted,
            "resumed sweep diverged from the uninterrupted run"
        );
        println!(
            "verify-resume: resumed report ({} cells restored) equals the uninterrupted run",
            outcome.status.restored_cells
        );
    }

    let summary = plan.summarize(&report);
    print_summary(&summary, &plan.sigma_requirements());
    let artifact = SweepArtifact {
        master_seed: MASTER_SEED + 41,
        fast_mode: fast,
        matrix_threads: matrix.resolved_threads(),
        status: outcome.status,
        sigma_requirements: plan.sigma_requirements(),
        summary,
        report,
    };
    write_json_artifact("SWEEP_report", &artifact);
}
