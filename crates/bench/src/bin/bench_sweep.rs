//! Scenario-sweep harness: matrix-parallel orchestration with durable
//! checkpoint/resume over an operating-condition grid.
//!
//! Builds a [`gis_core::SweepPlan`] spanning process corners × supply
//! voltages × temperatures × Pelgrom coefficients × metrics, runs every
//! (scenario, estimator) cell through [`gis_core::SweepRunner`], and writes
//! `results/SWEEP_report.json` with the full report, the per-cell summary
//! (sigma levels against the array-capacity targets) and the final status.
//!
//! Flags:
//!
//! * `--fast` — CI-sized grid and budgets.
//! * `--status` — print checkpoint progress and exit without running.
//! * `--fresh` — delete the checkpoint before running.
//! * `--max-cells N` — stop after N new cells (simulates a killed run; the
//!   checkpoint keeps what finished).
//! * `--verify-resume` — after the (possibly resumed) run completes, re-run
//!   the whole sweep uninterrupted in memory and assert the two reports are
//!   exactly equal. This is the CI gate for the checkpoint/resume contract.
//! * `--checkpoint PATH` — checkpoint file (default
//!   `results/sweep_checkpoint.jsonl`).
//! * `--connect HOST:PORT` — thin-client mode: ship the identical sweep as
//!   a job to a running `gis-serve` daemon instead of executing locally.
//!   The streamed rows are bit-identical to the direct path (the daemon
//!   derives every per-cell seed from the same master seed and policy), so
//!   the summary and `SWEEP_report.json` artifact are unchanged.
//!   Incompatible with the checkpoint flags — the daemon owns durability.
//! * `--warm-ab` — warm-vs-blind A/B mode: run a TT grid (5 supplies × 3
//!   temperatures × all 5 estimators = 75 cells at the fast budget) once
//!   blind and once in dependency-aware continuation mode, **assert** the
//!   warm estimates agree with the blind ones within their 90% error bars,
//!   and merge a `warm_vs_blind` block (`evals_saved`, `speedup_vs_blind`,
//!   agreement counters) into `BENCH_evaluation.json`. Incompatible with
//!   the checkpoint flags and `--connect`.
//!
//! The kill-and-resume smoke in CI is:
//! `bench_sweep --fast --fresh --max-cells 7` (partial, "killed"), then
//! `bench_sweep --fast --verify-resume` (resumes and proves equality).

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    parse_flag_value, results_dir, submit_served_job, workspace_root, write_json_artifact,
    MASTER_SEED,
};
use gis_core::sweep::clear_checkpoint;
use gis_core::{
    standard_estimators, AnalysisReport, ConvergencePolicy, ExecutionConfig, SramMetric, SweepPlan,
    SweepRunner, SweepStatus, SweepSummaryRow, YieldAnalysis,
};
use gis_serve::{EstimatorSpec, JobSpec, ProblemSpec};
use gis_variation::GlobalCorner;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct SweepArtifact {
    master_seed: u64,
    fast_mode: bool,
    matrix_threads: usize,
    status: SweepStatus,
    sigma_requirements: Vec<(String, f64)>,
    summary: Vec<SweepSummaryRow>,
    report: AnalysisReport,
}

fn plan(fast: bool) -> SweepPlan {
    let plan = SweepPlan::new()
        .spec_factor(1.5)
        .capacity_target("16Mb+8r", 16 * 1024 * 1024, 8, 0.99)
        .capacity_target("256Mb+64r", 256 * 1024 * 1024, 64, 0.99);
    if fast {
        plan.corners([GlobalCorner::TypicalTypical, GlobalCorner::SlowSlow])
            .supply_voltages([0.9, 1.0])
    } else {
        plan.corners(GlobalCorner::all())
            .supply_voltages([0.9, 1.0])
            .temperatures([-40.0, 25.0, 125.0])
            .metrics([SramMetric::ReadAccessTime, SramMetric::WriteDelay])
    }
}

fn policy(fast: bool) -> ConvergencePolicy {
    ConvergencePolicy::with_budget(if fast { 2_000 } else { 20_000 })
        .target_relative_error(0.1)
        .min_failures(20)
}

fn analysis(plan: &SweepPlan, fast: bool) -> YieldAnalysis {
    plan.analysis()
        .master_seed(MASTER_SEED + 41)
        .convergence_policy(policy(fast))
        .estimators(standard_estimators())
}

/// The warm-vs-blind A/B grid: one corner with two continuous axes, sized
/// to satisfy the evaluation contract (≥ 5 × 3 operating points) while
/// staying CI-cheap at the fast budget. Every non-origin cell has a warm
/// donor along the supply or temperature axis.
fn warm_ab_plan() -> SweepPlan {
    SweepPlan::new()
        .spec_factor(1.5)
        .corners([GlobalCorner::TypicalTypical])
        .supply_voltages([0.85, 0.90, 0.95, 1.00, 1.05])
        .temperatures([-40.0, 25.0, 125.0])
}

/// The `warm_vs_blind` block merged into `BENCH_evaluation.json`.
#[derive(Debug, Serialize)]
struct WarmVsBlindArtifact {
    master_seed: u64,
    matrix_threads: usize,
    grid: String,
    cells: usize,
    /// Cells whose warm row was bit-identical to the blind row (origin
    /// cells and estimators that ignore hints, Monte Carlo in particular).
    bit_identical_cells: usize,
    /// Cells where the warm estimate differed but stayed inside the
    /// overlapping 90% confidence intervals (asserted, so always
    /// `cells - bit_identical_cells`).
    agreeing_cells: usize,
    blind_evaluations: u64,
    warm_evaluations: u64,
    /// Model evaluations the continuation schedule avoided (blind − warm).
    evals_saved: i64,
    /// Evaluation-count ratio blind/warm. Reported as an eval ratio rather
    /// than wall-clock so the artifact is reproducible on any machine.
    speedup_vs_blind: f64,
}

/// Warm-vs-blind A/B mode: run the [`warm_ab_plan`] grid blind (the
/// reproducibility reference) and warm (dependency-aware continuation),
/// assert estimate agreement cell by cell, and merge the measured
/// `evals_saved` / `speedup_vs_blind` block into `BENCH_evaluation.json`
/// without disturbing the estimator-evaluation entries that
/// `bench_evaluation` owns.
fn run_warm_ab(matrix: &ExecutionConfig) {
    let plan = warm_ab_plan();
    // A/B budget: 4x the fast sweep budget. At 2 000 the minimum-norm
    // baseline's error bars are not yet trustworthy on the ~1e-6 cells of
    // this grid (its fast-budget CI can miss the high-budget reference), so
    // the agreement gate would test CI calibration rather than warm-start
    // correctness. The grid is surrogate-cheap; the whole A/B stays sub-second.
    let ab_policy = ConvergencePolicy::with_budget(8_000)
        .target_relative_error(0.1)
        .min_failures(20);
    let ab_analysis = || {
        plan.analysis()
            .master_seed(MASTER_SEED + 41)
            .convergence_policy(ab_policy)
            .estimators(standard_estimators())
    };
    println!(
        "bench_sweep --warm-ab: {} scenarios x 5 estimators, matrix threads {}",
        plan.scenarios().len(),
        matrix.resolved_threads()
    );

    let blind = SweepRunner::new()
        .matrix(*matrix)
        .run(&mut ab_analysis())
        .report
        .expect("blind sweep completes");
    let warm = SweepRunner::new()
        .matrix(*matrix)
        .warm_start(plan.warm_donors())
        .run(&mut ab_analysis())
        .report
        .expect("warm sweep completes");

    let mut cells = 0usize;
    let mut bit_identical = 0usize;
    let mut blind_evals: u64 = 0;
    let mut warm_evals: u64 = 0;
    for (bp, wp) in blind.problems.iter().zip(&warm.problems) {
        assert_eq!(bp.problem, wp.problem, "A/B grids diverged");
        for (b, w) in bp.methods.iter().zip(&wp.methods) {
            assert_eq!(b.estimator, w.estimator, "A/B estimator order diverged");
            cells += 1;
            blind_evals += b.row.evaluations;
            warm_evals += w.row.evaluations;
            if b.row == w.row {
                bit_identical += 1;
                continue;
            }
            // Agreement gate: the 90% confidence intervals of the blind and
            // warm estimates must overlap (half-widths are relative in the
            // row schema; a non-finite half-width collapses to a point).
            let half = |p: f64, rel: f64| if rel.is_finite() { p * rel } else { 0.0 };
            let hb = half(b.row.failure_probability, b.row.relative_confidence_90);
            let hw = half(w.row.failure_probability, w.row.relative_confidence_90);
            let gap = (b.row.failure_probability - w.row.failure_probability).abs();
            assert!(
                gap <= hb + hw,
                "{}/{}: warm estimate {} disagrees with blind {} ± {} (warm half-width {})",
                bp.problem,
                b.estimator,
                w.row.failure_probability,
                b.row.failure_probability,
                hb,
                hw
            );
        }
    }
    let evals_saved = blind_evals as i64 - warm_evals as i64;
    assert!(
        evals_saved > 0,
        "continuation mode must save evaluations on the A/B grid \
         (blind {blind_evals}, warm {warm_evals})"
    );

    let artifact = WarmVsBlindArtifact {
        master_seed: MASTER_SEED + 41,
        matrix_threads: matrix.resolved_threads(),
        grid: format!("TT x 5 supplies x 3 temperatures ({} cells)", cells),
        cells,
        bit_identical_cells: bit_identical,
        agreeing_cells: cells - bit_identical,
        blind_evaluations: blind_evals,
        warm_evaluations: warm_evals,
        evals_saved,
        speedup_vs_blind: blind_evals as f64 / warm_evals as f64,
    };
    println!(
        "warm-vs-blind: {} cells, {} bit-identical, {} agreeing within error bars, \
         {} evaluations saved ({:.3}x vs blind)",
        artifact.cells,
        artifact.bit_identical_cells,
        artifact.agreeing_cells,
        artifact.evals_saved,
        artifact.speedup_vs_blind
    );
    merge_warm_vs_blind(&artifact);
}

/// Read-modify-write of `BENCH_evaluation.json`: replace or insert the
/// `warm_vs_blind` key, preserving everything `bench_evaluation` wrote. If
/// the file does not exist yet (A/B run before the evaluation bench), start
/// from an empty object.
fn merge_warm_vs_blind(artifact: &WarmVsBlindArtifact) {
    let path = workspace_root().join("BENCH_evaluation.json");
    let mut root = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str::<serde::Value>(&text)
            .expect("BENCH_evaluation.json parses as JSON"),
        Err(_) => serde::Value::Object(Vec::new()),
    };
    let serde::Value::Object(fields) = &mut root else {
        panic!("BENCH_evaluation.json is not a JSON object");
    };
    let block = artifact.to_value();
    match fields.iter_mut().find(|(key, _)| key == "warm_vs_blind") {
        Some((_, value)) => *value = block,
        None => fields.push(("warm_vs_blind".to_string(), block)),
    }
    let json = serde_json::to_string_pretty(&root).expect("merged report serializes");
    std::fs::write(&path, json).expect("BENCH_evaluation.json is writable");
    println!("warm_vs_blind block merged into {}", path.display());
}

/// Thin-client mode: ship the sweep to a `gis-serve` daemon as a job. The
/// plan itself travels over the wire (it is fully serializable), the daemon
/// rebuilds the identical scenario problems, and the returned rows feed the
/// same summary/artifact path as a local run.
fn run_served(addr: &str, plan: &SweepPlan, fast: bool, matrix: &ExecutionConfig) {
    let job = JobSpec {
        problem: ProblemSpec::Plan { plan: plan.clone() },
        estimators: EstimatorSpec::standard(),
        master_seed: MASTER_SEED + 41,
        policy: Some(policy(fast)),
        warm_start: None,
        deadline_ms: None,
    };
    let receipt = submit_served_job(addr, &job);

    let total = receipt.cells_executed + receipt.cells_cached;
    for (problem, estimator) in receipt.report.failed_cells() {
        println!("  FAILED (quarantined server-side, never cached): {problem} / {estimator}");
    }
    let summary = plan.summarize(&receipt.report);
    print_summary(&summary, &plan.sigma_requirements());
    let artifact = SweepArtifact {
        master_seed: MASTER_SEED + 41,
        fast_mode: fast,
        matrix_threads: matrix.resolved_threads(),
        // Served runs have no local checkpoint; cache hits play the role of
        // restored cells in the artifact's status block.
        status: SweepStatus {
            total_cells: total,
            completed_cells: total,
            restored_cells: receipt.cells_cached,
            discarded_records: 0,
            pending: Vec::new(),
            failed_cells: receipt.report.failed_cells(),
        },
        sigma_requirements: plan.sigma_requirements(),
        summary,
        report: receipt.report,
    };
    write_json_artifact("SWEEP_report", &artifact);
}

fn print_status(status: &SweepStatus) {
    println!(
        "sweep status: {}/{} cells complete ({:.0}%), {} restored from checkpoint, \
         {} records discarded, {} pending",
        status.completed_cells,
        status.total_cells,
        100.0 * status.fraction_complete(),
        status.restored_cells,
        status.discarded_records,
        status.pending.len()
    );
    for (problem, estimator) in &status.failed_cells {
        println!("  FAILED (quarantined, will re-run on resume): {problem} / {estimator}");
    }
}

fn print_summary(rows: &[SweepSummaryRow], requirements: &[(String, f64)]) {
    println!(
        "\n{:<42} {:<22} {:>12} {:>7} {}",
        "scenario",
        "method",
        "P_fail",
        "sigma",
        requirements
            .iter()
            .map(|(n, s)| format!("{n} (≥{s:.2}σ)"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let margins = row
            .capacity_margins
            .iter()
            .map(|m| {
                format!(
                    "{} {:+.2}σ",
                    if m.meets { "pass" } else { "FAIL" },
                    m.margin_sigma
                )
            })
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:<42} {:<22} {:>12.3e} {:>7.3} {}",
            row.problem, row.estimator, row.failure_probability, row.sigma_level, margins
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let fresh = args.iter().any(|a| a == "--fresh");
    let status_only = args.iter().any(|a| a == "--status");
    let verify_resume = args.iter().any(|a| a == "--verify-resume");
    let max_cells = parse_flag_value(&args, "--max-cells")
        .map(|v| v.parse::<usize>().expect("--max-cells takes a number"));
    let checkpoint = parse_flag_value(&args, "--checkpoint")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("sweep_checkpoint.jsonl"));

    let connect = parse_flag_value(&args, "--connect");
    let warm_ab = args.iter().any(|a| a == "--warm-ab");

    let plan = plan(fast);
    let matrix = ExecutionConfig::from_env();

    if warm_ab {
        assert!(
            connect.is_none() && !fresh && !status_only && !verify_resume && max_cells.is_none(),
            "--warm-ab is incompatible with --connect and the checkpoint flags"
        );
        run_warm_ab(&matrix);
        return;
    }

    if let Some(addr) = connect {
        assert!(
            !fresh && !status_only && !verify_resume && max_cells.is_none(),
            "--connect is incompatible with the local checkpoint flags"
        );
        println!(
            "bench_sweep: {} scenarios x 5 estimators, served by {addr}",
            plan.scenarios().len()
        );
        run_served(&addr, &plan, fast, &matrix);
        return;
    }

    println!(
        "bench_sweep: {} scenarios x 5 estimators, matrix threads {}, checkpoint {}",
        plan.scenarios().len(),
        matrix.resolved_threads(),
        checkpoint.display()
    );

    if fresh {
        clear_checkpoint(&checkpoint).expect("checkpoint is clearable");
    }

    let mut runner = SweepRunner::new().matrix(matrix).checkpoint(&checkpoint);
    if let Some(budget) = max_cells {
        runner = runner.cell_budget(budget);
    }

    if status_only {
        let status = runner.status(&mut analysis(&plan, fast));
        print_status(&status);
        return;
    }

    let outcome = runner.run(&mut analysis(&plan, fast));
    print_status(&outcome.status);

    let Some(report) = outcome.report else {
        println!(
            "sweep paused by --max-cells; re-run without it to resume from {}",
            checkpoint.display()
        );
        return;
    };

    if verify_resume {
        // Prove the checkpoint-resume contract: an uninterrupted in-memory
        // run of the identical sweep must equal the (restored + fresh)
        // report bit for bit (PartialEq ignores wall-clock metadata only).
        let uninterrupted = analysis(&plan, fast).run();
        assert_eq!(
            report, uninterrupted,
            "resumed sweep diverged from the uninterrupted run"
        );
        println!(
            "verify-resume: resumed report ({} cells restored) equals the uninterrupted run",
            outcome.status.restored_cells
        );
    }

    let summary = plan.summarize(&report);
    print_summary(&summary, &plan.sigma_requirements());
    let artifact = SweepArtifact {
        master_seed: MASTER_SEED + 41,
        fast_mode: fast,
        matrix_threads: matrix.resolved_threads(),
        status: outcome.status,
        sigma_requirements: plan.sigma_requirements(),
        summary,
        report,
    };
    write_json_artifact("SWEEP_report", &artifact);
}
