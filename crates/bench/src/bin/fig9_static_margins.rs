//! Figure 9 — Static margins of the 6T cell under variation, extracted with
//! the same framework as the dynamic characteristics.
//!
//! Reports the nominal hold/read static noise margins and the data-retention
//! voltage, a small Monte Carlo population of the read SNM, and a
//! Gradient-Importance-Sampling extraction of the read-stability failure
//! probability `P(read SNM < limit)` — demonstrating that the statistical layer
//! is metric-agnostic (dynamic and static characteristics share the estimators).
//!
//! Run with `cargo run --release -p gis-bench --bin fig9_static_margins`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{print_csv, scaled, write_json_artifact, MASTER_SEED};
use gis_core::{
    default_sram_variation_space, Estimator, FailureProblem, FnModel, GisConfig,
    GradientImportanceSampling, ImportanceSamplingConfig, MpfpConfig, Spec,
};
use gis_sram::{SramCellConfig, StaticAnalysis};
use gis_stats::{OnlineStats, RngStream};
use gis_variation::PelgromModel;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct StaticMarginReport {
    nominal_hold_snm: f64,
    nominal_read_snm: f64,
    data_retention_voltage: f64,
    monte_carlo_samples: u64,
    read_snm_mean: f64,
    read_snm_std: f64,
    read_snm_min: f64,
    snm_limit: f64,
    failure_probability: f64,
    sigma_level: f64,
    evaluations: u64,
}

fn main() {
    let analysis = StaticAnalysis::typical_45nm();
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());

    // Nominal static characterization.
    let hold = analysis.hold_snm(&[0.0; 6]).expect("hold SNM");
    let read = analysis.read_snm(&[0.0; 6]).expect("read SNM");
    let drv = analysis
        .data_retention_voltage(&[0.0; 6], 0.05, 0.05)
        .expect("retention voltage");
    println!("nominal hold SNM  : {:.1} mV", hold * 1e3);
    println!("nominal read SNM  : {:.1} mV", read * 1e3);
    println!("data retention Vdd: {:.2} V", drv);

    // Small Monte Carlo population of the read SNM.
    let mut rng = RngStream::from_seed(MASTER_SEED + 23);
    let mc_samples = scaled(300u64, 60);
    let mut stats = OnlineStats::new();
    let mut values = Vec::new();
    for _ in 0..mc_samples {
        let (_, deltas) = space.sample(&mut rng);
        let snm = analysis.read_snm(deltas.as_slice()).unwrap_or(0.0);
        stats.push(snm);
        values.push(snm);
    }
    println!(
        "read SNM under variation: mean {:.1} mV, sigma {:.1} mV, min {:.1} mV ({} samples)",
        stats.mean() * 1e3,
        stats.std_dev() * 1e3,
        stats.min() * 1e3,
        mc_samples
    );
    let rows: Vec<String> = values.iter().map(|v| format!("{:.5}", v)).collect();
    print_csv("fig9_read_snm_samples", "read_snm_v", &rows);

    // High-sigma extraction of P(read SNM < limit) with the shared framework.
    // The limit is placed several MC sigmas below the mean so the event is rare.
    let snm_limit = (stats.mean() - 4.5 * stats.std_dev()).max(0.005);
    let analysis_for_model = analysis.clone();
    let space_for_model = space.clone();
    let model = FnModel::new("read-snm", 6, move |z: &gis_linalg::Vector| {
        let deltas = space_for_model.to_physical(z);
        analysis_for_model
            .read_snm(deltas.as_slice())
            .unwrap_or(0.0)
    });
    let problem = FailureProblem::from_model(model, Spec::LowerLimit(snm_limit));
    let gis = GradientImportanceSampling::new(GisConfig {
        mpfp: MpfpConfig {
            max_evaluations: scaled(600, 300),
            ..MpfpConfig::default()
        },
        sampling: ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: scaled(1_500, 500),
            batch_size: 250,
            target_relative_error: 0.2,
            min_failures: 15,
        },
        ..GisConfig::default()
    });
    let outcome = gis.estimate(&problem, &mut rng);
    println!(
        "P(read SNM < {:.1} mV) = {:.3e} ({:.2} sigma) using {} DC-sweep evaluations",
        snm_limit * 1e3,
        outcome.result.failure_probability,
        outcome.result.sigma_level,
        outcome.result.evaluations
    );

    let report = StaticMarginReport {
        nominal_hold_snm: hold,
        nominal_read_snm: read,
        data_retention_voltage: drv,
        monte_carlo_samples: mc_samples,
        read_snm_mean: stats.mean(),
        read_snm_std: stats.std_dev(),
        read_snm_min: stats.min(),
        snm_limit,
        failure_probability: outcome.result.failure_probability,
        sigma_level: outcome.result.sigma_level,
        evaluations: outcome.result.evaluations,
    };
    write_json_artifact("fig9_static_margins", &report);
}
