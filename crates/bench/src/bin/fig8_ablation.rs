//! Figure 8 / Table 4 — Ablation of the Gradient Importance Sampling design
//! choices.
//!
//! Each row disables or re-tunes one ingredient of GIS and measures the impact
//! on accuracy (deviation from a long reference run) and cost (simulations to
//! the 10% target) on the surrogate read-access-time problem:
//!
//! * pure mean shift (no defensive component),
//! * no adaptive re-centring,
//! * bridge component on/off,
//! * finite-difference step size of the gradient,
//! * defensive-mixture weight.
//!
//! Run with `cargo run --release -p gis-bench --bin fig8_ablation`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    print_csv, problem_with_relative_spec, scaled, surrogate_read_model, write_json_artifact,
    MASTER_SEED,
};
use gis_core::{
    run_importance_sampling, Estimator, Executor, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, MpfpConfig, Proposal,
};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    variant: String,
    failure_probability: f64,
    deviation_from_reference: f64,
    relative_confidence_90: f64,
    evaluations: u64,
    effective_sample_size: f64,
    converged: bool,
}

fn base_sampling() -> ImportanceSamplingConfig {
    ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: scaled(40_000, 4_000),
        batch_size: 500,
        target_relative_error: 0.1,
        min_failures: 30,
    }
}

fn main() {
    let model = surrogate_read_model();
    let nominal = model.nominal_metric();
    let base = problem_with_relative_spec(model, nominal, 1.8);
    let master = RngStream::from_seed(MASTER_SEED + 17);

    // Reference from a long run.
    let reference = {
        let gis = GradientImportanceSampling::new(GisConfig::default());
        let outcome = gis.estimate(&base.fork(), &mut master.split(999));
        let shift = Vector::from_slice(outcome.shift().expect("GIS reports a shift"));
        let (result, _) = run_importance_sampling(
            &base.fork(),
            &Proposal::defensive_mixture(shift, 0.1),
            &ImportanceSamplingConfig {
                corrected_stopping: true,
                max_samples: scaled(300_000, 30_000),
                batch_size: scaled(20_000, 5_000),
                target_relative_error: 0.01,
                min_failures: scaled(1_000, 100),
            },
            &mut master.split(1000),
            &Executor::from_env(),
            "reference-is",
            0,
        );
        result.failure_probability
    };
    println!("reference P_fail = {reference:.4e}");

    let variants: Vec<(&str, GisConfig)> = vec![
        ("default", GisConfig::default()),
        (
            "pure-mean-shift",
            GisConfig {
                defensive_fraction: 0.0,
                ..GisConfig::default()
            },
        ),
        (
            "no-adaptation",
            GisConfig {
                adaptive_recentering: false,
                ..GisConfig::default()
            },
        ),
        (
            "bridge-mixture",
            GisConfig {
                bridge_fraction: 0.25,
                bridge_position: 0.75,
                ..GisConfig::default()
            },
        ),
        (
            "coarse-gradient-step",
            GisConfig {
                mpfp: MpfpConfig {
                    finite_difference_step: 0.5,
                    ..MpfpConfig::default()
                },
                ..GisConfig::default()
            },
        ),
        (
            "fine-gradient-step",
            GisConfig {
                mpfp: MpfpConfig {
                    finite_difference_step: 0.01,
                    ..MpfpConfig::default()
                },
                ..GisConfig::default()
            },
        ),
        (
            "heavy-defensive-0.3",
            GisConfig {
                defensive_fraction: 0.3,
                ..GisConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "P_fail", "dev[%]", "rel90[%]", "#sims", "ESS", "converged"
    );
    for (index, (name, mut config)) in variants.into_iter().enumerate() {
        config.sampling = base_sampling();
        let gis = GradientImportanceSampling::new(config);
        let outcome = gis.estimate(&base.fork(), &mut master.split(index as u64));
        let deviation = if reference > 0.0 {
            (outcome.result.failure_probability - reference).abs() / reference
        } else {
            f64::NAN
        };
        let row = AblationRow {
            variant: name.to_string(),
            failure_probability: outcome.result.failure_probability,
            deviation_from_reference: deviation,
            relative_confidence_90: outcome.result.relative_confidence_90(),
            evaluations: outcome.result.evaluations,
            effective_sample_size: outcome
                .is_diagnostics()
                .map(|d| d.effective_sample_size)
                .unwrap_or(0.0),
            converged: outcome.result.converged,
        };
        println!(
            "{:<24} {:>12.4e} {:>10.1} {:>10.1} {:>10} {:>10.1} {:>10}",
            row.variant,
            row.failure_probability,
            row.deviation_from_reference * 100.0,
            row.relative_confidence_90 * 100.0,
            row.evaluations,
            row.effective_sample_size,
            row.converged
        );
        rows.push(row);
    }

    let csv_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.6e},{:.4},{:.4},{},{:.1},{}",
                r.variant,
                r.failure_probability,
                r.deviation_from_reference,
                r.relative_confidence_90,
                r.evaluations,
                r.effective_sample_size,
                r.converged
            )
        })
        .collect();
    print_csv(
        "fig8_ablation",
        "variant,p_fail,deviation,rel90,evaluations,ess,converged",
        &csv_rows,
    );
    write_json_artifact("fig8_ablation", &rows);
}
