//! Table 2 — Write-failure extraction on the transient 6T testbench.
//!
//! Same comparison as Table 1, but the dynamic characteristic is the write
//! delay: the time from the wordline half-rise until the cell actually flips.
//! A sample fails when that delay exceeds the specification (a fraction of the
//! wordline pulse width); samples whose cell never flips are censored at the
//! simulation window and therefore always fail.
//!
//! All four methods run through the unified [`gis_core::YieldAnalysis`]
//! driver, which derives a deterministic seed per method from the master seed.
//!
//! Run with `cargo run --release -p gis-bench --bin table2_write_failure`.
//! With `--connect HOST:PORT` the identical configuration — custom testbench
//! timing included — is shipped to a running `gis-serve` daemon instead, and
//! the returned rows are bit-identical to the local path.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    connect_addr, print_comparison_table, problem_with_relative_spec, scaled, submit_served_job,
    write_json_artifact, MASTER_SEED,
};
use gis_core::{
    default_sram_variation_space, GisConfig, ImportanceSamplingConfig, MnisConfig,
    SphericalSamplingConfig, SramMetric, SramTransientModel, SssConfig, YieldAnalysis,
};
use gis_serve::{EstimatorSpec, JobSpec, ProblemSpec};
use gis_sram::{SramCellConfig, SramTestbench, TestbenchTiming};
use gis_variation::PelgromModel;

fn main() {
    let spec_factor = 3.0;
    // The nominal write completes within a couple of picoseconds of the
    // wordline rise, so the write-delay measurement needs a finer integration
    // step than the read testbench to resolve the specification boundary.
    let cell = SramCellConfig::typical_45nm();
    let timing = TestbenchTiming {
        time_step: 1e-12,
        stop_time: 1.5e-9,
        ..TestbenchTiming::default()
    };
    let testbench =
        SramTestbench::new(cell.clone(), timing.clone()).expect("valid write testbench");
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramTransientModel::new(testbench, space, SramMetric::WriteDelay);
    let nominal = model.nominal_metric();
    println!("nominal write delay: {:.4e} s", nominal);
    println!(
        "specification (upper limit): {:.4e} s ({spec_factor}x nominal)",
        nominal * spec_factor
    );

    let sampling = ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: scaled(6_000, 300),
        batch_size: scaled(250, 100),
        target_relative_error: 0.1,
        min_failures: scaled(30, 10),
    };
    // One spec list drives both paths: built locally for a direct run,
    // shipped verbatim to the daemon in thin-client mode.
    let estimators = vec![
        EstimatorSpec::GradientIs {
            config: GisConfig {
                sampling: sampling.clone(),
                ..GisConfig::default()
            },
        },
        EstimatorSpec::MinimumNormIs {
            config: MnisConfig {
                presamples_per_round: scaled(1_000, 250),
                presample_scales: vec![2.0, 2.5, 3.0],
                sampling,
                ..MnisConfig::default()
            },
        },
        EstimatorSpec::SphericalSampling {
            config: SphericalSamplingConfig {
                corrected_stopping: true,
                directions: scaled(150, 25),
                max_radius: 8.0,
                bisection_steps: 12,
                target_relative_error: 0.1,
                min_failing_directions: scaled(10, 5),
            },
        },
        EstimatorSpec::ScaledSigmaSampling {
            config: SssConfig {
                scales: scaled(vec![1.6, 2.0, 2.4, 2.8, 3.2], vec![1.6, 2.4, 3.2]),
                samples_per_scale: scaled(800, 120),
                min_failures_per_scale: scaled(10, 5),
            },
        },
    ];

    let report = if let Some(addr) = connect_addr() {
        let job = JobSpec {
            problem: ProblemSpec::TransientSram {
                metric: SramMetric::WriteDelay,
                spec_factor,
                timing: Some(timing),
            },
            estimators,
            master_seed: MASTER_SEED + 2,
            policy: None,
            warm_start: None,
            deadline_ms: None,
        };
        submit_served_job(&addr, &job).report
    } else {
        YieldAnalysis::new()
            .master_seed(MASTER_SEED + 2)
            .problem(
                "write-delay",
                problem_with_relative_spec(model, nominal, spec_factor),
            )
            .estimators(estimators.iter().map(|spec| spec.build()).collect())
            .run()
    };

    let problem_report = &report.problems[0];
    if let Some(mpfp) = problem_report
        .method("gradient-is")
        .and_then(|m| m.outcome.mpfp())
    {
        println!(
            "[gradient-is] MPFP beta = {:.3} sigma after {} search simulations",
            mpfp.beta, mpfp.evaluations
        );
    }
    if let Some(search) = problem_report
        .method("minimum-norm-is")
        .and_then(|m| m.outcome.search())
    {
        println!(
            "[minimum-norm-is] search beta = {:.3} sigma after {} simulations",
            search.beta, search.evaluations
        );
    }
    if let Some(points) = problem_report
        .method("scaled-sigma-sampling")
        .and_then(|m| m.outcome.scale_points())
    {
        for p in points {
            println!(
                "[scaled-sigma] s = {:.1}: {} / {} failures (P = {:.3e})",
                p.scale, p.failures, p.samples, p.probability
            );
        }
    }

    let rows = problem_report.rows();
    print_comparison_table(
        "Table 2: 6T write-failure extraction (transient testbench)",
        &rows,
    );
    println!(
        "\nBrute-force Monte Carlo reference cost (10% rel. error) at the GIS estimate: {:.3e} simulations",
        gis_core::required_samples(rows[0].failure_probability.clamp(1e-12, 0.5), 0.1)
    );
    write_json_artifact("table2_write_failure", &report);
}
