//! Table 2 — Write-failure extraction on the transient 6T testbench.
//!
//! Same comparison as Table 1, but the dynamic characteristic is the write
//! delay: the time from the wordline half-rise until the cell actually flips.
//! A sample fails when that delay exceeds the specification (a fraction of the
//! wordline pulse width); samples whose cell never flips are censored at the
//! simulation window and therefore always fail.
//!
//! Run with `cargo run --release -p gis-bench --bin table2_write_failure`.

use gis_bench::{
    print_comparison_table, problem_with_relative_spec, write_json_artifact, ComparisonRow,
    MASTER_SEED,
};
use gis_core::{
    default_sram_variation_space, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, MinimumNormIs, MnisConfig, ScaledSigmaSampling, SphericalSampling,
    SphericalSamplingConfig, SramMetric, SramTransientModel, SssConfig,
};
use gis_sram::{SramCellConfig, SramTestbench, TestbenchTiming};
use gis_stats::RngStream;
use gis_variation::PelgromModel;

fn main() {
    let spec_factor = 3.0;
    // The nominal write completes within a couple of picoseconds of the
    // wordline rise, so the write-delay measurement needs a finer integration
    // step than the read testbench to resolve the specification boundary.
    let cell = SramCellConfig::typical_45nm();
    let timing = TestbenchTiming {
        time_step: 1e-12,
        stop_time: 1.5e-9,
        ..TestbenchTiming::default()
    };
    let testbench = SramTestbench::new(cell.clone(), timing).expect("valid write testbench");
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramTransientModel::new(testbench, space, SramMetric::WriteDelay);
    let nominal = model.nominal_metric();
    println!("nominal write delay: {:.4e} s", nominal);
    println!(
        "specification (upper limit): {:.4e} s ({spec_factor}x nominal)",
        nominal * spec_factor
    );

    let base_problem = problem_with_relative_spec(model, nominal, spec_factor);
    let master = RngStream::from_seed(MASTER_SEED + 2);
    let mut rows = Vec::new();

    {
        let problem = base_problem.fork();
        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 6_000,
                batch_size: 250,
                target_relative_error: 0.1,
                min_failures: 30,
            },
            ..GisConfig::default()
        });
        let outcome = gis.run(&problem, &mut master.split(1));
        println!(
            "[gradient-is] MPFP beta = {:.3} sigma after {} search simulations",
            outcome.mpfp.beta, outcome.mpfp.evaluations
        );
        rows.push(ComparisonRow::from_result(&outcome.result));
    }

    {
        let problem = base_problem.fork();
        let mnis = MinimumNormIs::new(MnisConfig {
            presamples_per_round: 1_000,
            presample_scales: vec![2.0, 2.5, 3.0],
            sampling: ImportanceSamplingConfig {
                max_samples: 6_000,
                batch_size: 250,
                target_relative_error: 0.1,
                min_failures: 30,
            },
            ..MnisConfig::default()
        });
        let (result, _, search) = mnis.run(&problem, &mut master.split(2));
        println!(
            "[minimum-norm-is] search beta = {:.3} sigma after {} simulations",
            search.beta, search.evaluations
        );
        rows.push(ComparisonRow::from_result(&result));
    }

    {
        let problem = base_problem.fork();
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 150,
            max_radius: 8.0,
            bisection_steps: 12,
            target_relative_error: 0.1,
            min_failing_directions: 10,
        });
        let result = spherical.run(&problem, &mut master.split(3));
        rows.push(ComparisonRow::from_result(&result));
    }

    {
        let problem = base_problem.fork();
        let sss = ScaledSigmaSampling::new(SssConfig {
            scales: vec![1.6, 2.0, 2.4, 2.8, 3.2],
            samples_per_scale: 800,
            min_failures_per_scale: 10,
        });
        let (result, points) = sss.run(&problem, &mut master.split(4));
        for p in &points {
            println!(
                "[scaled-sigma] s = {:.1}: {} / {} failures (P = {:.3e})",
                p.scale, p.failures, p.samples, p.probability
            );
        }
        rows.push(ComparisonRow::from_result(&result));
    }

    print_comparison_table("Table 2: 6T write-failure extraction (transient testbench)", &rows);
    println!(
        "\nBrute-force Monte Carlo reference cost (10% rel. error) at the GIS estimate: {:.3e} simulations",
        gis_core::required_samples(rows[0].failure_probability.max(1e-12).min(0.5), 0.1)
    );
    write_json_artifact("table2_write_failure", &rows);
}
