//! Figure 5 — Accuracy and cost versus sigma level.
//!
//! The specification limit of the surrogate read-access-time problem is swept
//! so that the true failure probability ranges from roughly 3σ to 5.5σ. Every
//! sweep point is registered as a named problem on one
//! [`gis_core::YieldAnalysis`] driver running Gradient IS and the minimum-norm
//! baseline to a 10% relative-error target; their estimates are compared
//! against a high-budget reference importance-sampling run. The figure shows
//! (a) the deviation from the reference and (b) the number of simulations,
//! both as a function of the sigma level.
//!
//! Run with `cargo run --release -p gis-bench --bin fig5_sigma_sweep`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    print_csv, problem_with_relative_spec, scaled, surrogate_read_model, write_json_artifact,
    MASTER_SEED,
};
use gis_core::{
    run_importance_sampling, ConvergencePolicy, Estimator, Executor, GisConfig,
    GradientImportanceSampling, ImportanceSamplingConfig, MinimumNormIs, MnisConfig, Proposal,
    YieldAnalysis,
};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SigmaSweepPoint {
    spec_factor: f64,
    reference_probability: f64,
    reference_sigma: f64,
    gis_probability: f64,
    gis_deviation: f64,
    gis_evaluations: u64,
    mnis_probability: f64,
    mnis_deviation: f64,
    mnis_evaluations: u64,
}

fn main() {
    let spec_factors: &[f64] = scaled(&[1.35, 1.5, 1.7, 1.9, 2.2, 2.6], &[1.5, 2.2]);
    let master = RngStream::from_seed(MASTER_SEED + 11);

    // One driver, one problem per sweep point, both methods at the production
    // accuracy target (10% relative error, 60k budget).
    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(GradientImportanceSampling::new(GisConfig::default())),
        Box::new(MinimumNormIs::new(MnisConfig::default())),
    ];
    let mut analysis = YieldAnalysis::new()
        .master_seed(MASTER_SEED + 11)
        .convergence_policy(
            ConvergencePolicy::with_budget(scaled(60_000, 10_000))
                .target_relative_error(0.1)
                .min_failures(30),
        )
        .estimators(estimators);
    for &factor in spec_factors {
        let model = surrogate_read_model();
        let nominal = model.nominal_metric();
        analysis = analysis.problem(
            format!("spec-{factor:.2}"),
            problem_with_relative_spec(model, nominal, factor),
        );
    }
    let report = analysis.run();

    let mut points = Vec::new();
    for (index, (&factor, problem_report)) in
        spec_factors.iter().zip(report.problems.iter()).enumerate()
    {
        let gis = problem_report.method("gradient-is").expect("GIS ran");
        let mnis = problem_report.method("minimum-norm-is").expect("MNIS ran");

        // Reference: a long fixed-proposal IS run centred on the MPFP the
        // gradient search located for this sweep point.
        let shift = Vector::from_slice(gis.outcome.shift().expect("GIS reports a shift"));
        let model = surrogate_read_model();
        let nominal = model.nominal_metric();
        let (reference, _) = run_importance_sampling(
            &problem_with_relative_spec(model, nominal, factor),
            &Proposal::defensive_mixture(shift, 0.1),
            &ImportanceSamplingConfig {
                corrected_stopping: true,
                max_samples: scaled(300_000, 30_000),
                batch_size: scaled(20_000, 5_000),
                target_relative_error: 0.01,
                min_failures: scaled(1_000, 100),
            },
            &mut master.split((index * 10 + 1) as u64),
            &Executor::from_env(),
            "reference-is",
            0,
        );

        let deviation = |estimate: f64| {
            if reference.failure_probability > 0.0 && estimate > 0.0 {
                (estimate - reference.failure_probability).abs() / reference.failure_probability
            } else {
                f64::NAN
            }
        };
        let point = SigmaSweepPoint {
            spec_factor: factor,
            reference_probability: reference.failure_probability,
            reference_sigma: reference.sigma_level,
            gis_probability: gis.row.failure_probability,
            gis_deviation: deviation(gis.row.failure_probability),
            gis_evaluations: gis.row.evaluations,
            mnis_probability: mnis.row.failure_probability,
            mnis_deviation: deviation(mnis.row.failure_probability),
            mnis_evaluations: mnis.row.evaluations,
        };
        println!(
            "spec {:>4.2}x: sigma {:>5.2}, ref {:.3e} | GIS {:.3e} (dev {:>5.1}%, {:>6} sims) | MNIS {:.3e} (dev {:>5.1}%, {:>6} sims)",
            point.spec_factor,
            point.reference_sigma,
            point.reference_probability,
            point.gis_probability,
            point.gis_deviation * 100.0,
            point.gis_evaluations,
            point.mnis_probability,
            point.mnis_deviation * 100.0,
            point.mnis_evaluations
        );
        points.push(point);
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{:.2},{:.3},{:.6e},{:.6e},{:.4},{},{:.6e},{:.4},{}",
                p.spec_factor,
                p.reference_sigma,
                p.reference_probability,
                p.gis_probability,
                p.gis_deviation,
                p.gis_evaluations,
                p.mnis_probability,
                p.mnis_deviation,
                p.mnis_evaluations
            )
        })
        .collect();
    print_csv(
        "fig5_sigma_sweep",
        "spec_factor,sigma,reference_p,gis_p,gis_deviation,gis_evals,mnis_p,mnis_deviation,mnis_evals",
        &rows,
    );
    write_json_artifact("fig5_sigma_sweep", &points);
}
