//! Figure 5 — Accuracy and cost versus sigma level.
//!
//! The specification limit of the surrogate read-access-time problem is swept
//! so that the true failure probability ranges from roughly 3σ to 5.5σ. At
//! every point Gradient IS and the minimum-norm baseline are run to a 10%
//! relative-error target, and their estimate is compared against a
//! high-budget reference importance-sampling run. The figure shows (a) the
//! deviation from the reference and (b) the number of simulations, both as a
//! function of the sigma level.
//!
//! Run with `cargo run --release -p gis-bench --bin fig5_sigma_sweep`.

use gis_bench::{
    print_csv, problem_with_relative_spec, surrogate_read_model, write_json_artifact, MASTER_SEED,
};
use gis_core::{
    run_importance_sampling, GisConfig, GradientImportanceSampling, ImportanceSamplingConfig,
    MinimumNormIs, MnisConfig, Proposal,
};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SigmaSweepPoint {
    spec_factor: f64,
    reference_probability: f64,
    reference_sigma: f64,
    gis_probability: f64,
    gis_deviation: f64,
    gis_evaluations: u64,
    mnis_probability: f64,
    mnis_deviation: f64,
    mnis_evaluations: u64,
}

fn main() {
    let spec_factors = [1.35, 1.5, 1.7, 1.9, 2.2, 2.6];
    let master = RngStream::from_seed(MASTER_SEED + 11);
    let mut points = Vec::new();

    for (index, &factor) in spec_factors.iter().enumerate() {
        let model = surrogate_read_model();
        let nominal = model.nominal_metric();
        let base = problem_with_relative_spec(model, nominal, factor);

        // Reference: gradient MPFP, then a long fixed-proposal IS run.
        let gis_ref = GradientImportanceSampling::new(GisConfig::default());
        let ref_outcome = gis_ref.run(&base.fork(), &mut master.split((index * 10) as u64));
        let shift = Vector::from_slice(&ref_outcome.diagnostics.shift.clone().unwrap());
        let (reference, _) = run_importance_sampling(
            &base.fork(),
            &Proposal::defensive_mixture(shift, 0.1),
            &ImportanceSamplingConfig {
                max_samples: 300_000,
                batch_size: 20_000,
                target_relative_error: 0.01,
                min_failures: 1_000,
            },
            &mut master.split((index * 10 + 1) as u64),
            "reference-is",
            0,
        );

        // Gradient IS at the production accuracy target.
        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 60_000,
                batch_size: 500,
                target_relative_error: 0.1,
                min_failures: 30,
            },
            ..GisConfig::default()
        });
        let gis_outcome = gis.run(&base.fork(), &mut master.split((index * 10 + 2) as u64));

        // Minimum-norm IS at the same target.
        let mnis = MinimumNormIs::new(MnisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 60_000,
                batch_size: 500,
                target_relative_error: 0.1,
                min_failures: 30,
            },
            ..MnisConfig::default()
        });
        let (mnis_result, _, _) = mnis.run(&base.fork(), &mut master.split((index * 10 + 3) as u64));

        let deviation = |estimate: f64| {
            if reference.failure_probability > 0.0 && estimate > 0.0 {
                (estimate - reference.failure_probability).abs() / reference.failure_probability
            } else {
                f64::NAN
            }
        };
        let point = SigmaSweepPoint {
            spec_factor: factor,
            reference_probability: reference.failure_probability,
            reference_sigma: reference.sigma_level,
            gis_probability: gis_outcome.result.failure_probability,
            gis_deviation: deviation(gis_outcome.result.failure_probability),
            gis_evaluations: gis_outcome.result.evaluations,
            mnis_probability: mnis_result.failure_probability,
            mnis_deviation: deviation(mnis_result.failure_probability),
            mnis_evaluations: mnis_result.evaluations,
        };
        println!(
            "spec {:>4.2}x: sigma {:>5.2}, ref {:.3e} | GIS {:.3e} (dev {:>5.1}%, {:>6} sims) | MNIS {:.3e} (dev {:>5.1}%, {:>6} sims)",
            point.spec_factor,
            point.reference_sigma,
            point.reference_probability,
            point.gis_probability,
            point.gis_deviation * 100.0,
            point.gis_evaluations,
            point.mnis_probability,
            point.mnis_deviation * 100.0,
            point.mnis_evaluations
        );
        points.push(point);
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{:.2},{:.3},{:.6e},{:.6e},{:.4},{},{:.6e},{:.4},{}",
                p.spec_factor,
                p.reference_sigma,
                p.reference_probability,
                p.gis_probability,
                p.gis_deviation,
                p.gis_evaluations,
                p.mnis_probability,
                p.mnis_deviation,
                p.mnis_evaluations
            )
        })
        .collect();
    print_csv(
        "fig5_sigma_sweep",
        "spec_factor,sigma,reference_p,gis_p,gis_deviation,gis_evals,mnis_p,mnis_deviation,mnis_evals",
        &rows,
    );
    write_json_artifact("fig5_sigma_sweep", &points);
}
