//! Figure 4 — Convergence of the failure-probability estimate versus the
//! number of simulations for each method.
//!
//! All methods attack the same surrogate read-access-time problem through the
//! unified [`gis_core::YieldAnalysis`] driver. The printed series (one CSV
//! block per method) show the running estimate and its relative error as a
//! function of cumulative simulator calls; the reference line is a long
//! fixed-proposal importance-sampling run centred on the MPFP the gradient
//! search found.
//!
//! Run with `cargo run --release -p gis-bench --bin fig4_convergence`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    print_csv, problem_with_relative_spec, scaled, surrogate_read_model, write_json_artifact,
    MASTER_SEED,
};
use gis_core::{
    run_importance_sampling, Estimator, Executor, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, MinimumNormIs, MnisConfig, MonteCarlo, MonteCarloConfig, Proposal,
    ScaledSigmaSampling, SphericalSampling, SphericalSamplingConfig, SssConfig, YieldAnalysis,
};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ConvergenceSeries {
    method: String,
    evaluations: Vec<u64>,
    estimates: Vec<f64>,
    relative_errors: Vec<f64>,
    /// The method's final reported estimate (for scaled-sigma sampling this is
    /// the extrapolated value, not the last raw trace point).
    final_estimate: f64,
}

fn series_from_trace(
    method: &str,
    trace: &[gis_core::ConvergencePoint],
    final_estimate: f64,
) -> ConvergenceSeries {
    ConvergenceSeries {
        method: method.to_string(),
        evaluations: trace.iter().map(|p| p.evaluations).collect(),
        estimates: trace.iter().map(|p| p.estimate).collect(),
        relative_errors: trace.iter().map(|p| p.relative_error).collect(),
        final_estimate,
    }
}

fn print_series(series: &ConvergenceSeries) {
    let rows: Vec<String> = series
        .evaluations
        .iter()
        .zip(series.estimates.iter())
        .zip(series.relative_errors.iter())
        .map(|((n, p), r)| format!("{n},{p:.6e},{r:.4}"))
        .collect();
    print_csv(
        &format!("fig4_convergence_{}", series.method),
        "evaluations,estimate,relative_error",
        &rows,
    );
}

fn main() {
    let spec_factor = 1.8;
    let model = surrogate_read_model();
    let nominal = model.nominal_metric();
    let base = problem_with_relative_spec(model, nominal, spec_factor);
    let master = RngStream::from_seed(MASTER_SEED + 7);

    // The convergence-focused budgets differ per method, so each estimator is
    // registered with its own configuration rather than a uniform policy.
    let sampling = ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: scaled(50_000, 5_000),
        batch_size: 500,
        target_relative_error: 0.02,
        min_failures: 50,
    };
    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(GradientImportanceSampling::new(GisConfig {
            sampling: sampling.clone(),
            ..GisConfig::default()
        })),
        Box::new(MinimumNormIs::new(MnisConfig {
            sampling,
            ..MnisConfig::default()
        })),
        Box::new(SphericalSampling::new(SphericalSamplingConfig {
            directions: scaled(3_000, 300),
            target_relative_error: 0.02,
            ..SphericalSamplingConfig::default()
        })),
        Box::new(ScaledSigmaSampling::new(SssConfig {
            samples_per_scale: scaled(10_000, 1_000),
            ..SssConfig::default()
        })),
        // Brute-force Monte Carlo will not converge at this sigma level; its
        // trace demonstrates why.
        Box::new(MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: scaled(200_000, 20_000),
            batch_size: 10_000,
            target_relative_error: 0.1,
            min_failures: 10,
        })),
    ];

    let report = YieldAnalysis::new()
        .master_seed(MASTER_SEED + 7)
        .problem("surrogate-read", base.fork())
        .estimators(estimators)
        .run();
    let problem_report = &report.problems[0];

    // Reference value: a long importance-sampling run centred on the MPFP the
    // gradient search found (200k samples).
    let reference = {
        let shift = Vector::from_slice(
            problem_report
                .method("gradient-is")
                .and_then(|m| m.outcome.shift())
                .expect("GIS reports a shift"),
        );
        let long_problem = base.fork();
        let (result, _) = run_importance_sampling(
            &long_problem,
            &Proposal::defensive_mixture(shift, 0.1),
            &ImportanceSamplingConfig {
                corrected_stopping: true,
                max_samples: scaled(200_000, 20_000),
                batch_size: scaled(10_000, 2_000),
                target_relative_error: 0.01,
                min_failures: scaled(500, 50),
            },
            &mut master.split(100),
            &Executor::from_env(),
            "reference-is",
            0,
        );
        result.failure_probability
    };
    println!("reference P_fail = {reference:.4e} (long importance-sampling run)");

    let mut all_series = Vec::new();
    for method in &problem_report.methods {
        let series = series_from_trace(
            &method.estimator,
            &method.outcome.result.trace,
            method.outcome.result.failure_probability,
        );
        print_series(&series);
        all_series.push(series);
    }

    for s in &all_series {
        let final_estimate = s.final_estimate;
        let final_evals = s.evaluations.last().copied().unwrap_or(0);
        let error_vs_reference = if reference > 0.0 && final_estimate > 0.0 {
            (final_estimate - reference).abs() / reference
        } else {
            f64::NAN
        };
        println!(
            "{:<24} final estimate {:.4e} after {:>8} sims (deviation from reference: {:.1}%)",
            s.method,
            final_estimate,
            final_evals,
            error_vs_reference * 100.0
        );
    }

    write_json_artifact("fig4_convergence", &all_series);
}
