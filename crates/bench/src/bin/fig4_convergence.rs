//! Figure 4 — Convergence of the failure-probability estimate versus the
//! number of simulations for each method.
//!
//! All methods attack the same surrogate read-access-time problem. The printed
//! series (one CSV block per method) show the running estimate and its relative
//! error as a function of cumulative simulator calls; the reference line is a
//! long fixed-proposal importance-sampling run.
//!
//! Run with `cargo run --release -p gis-bench --bin fig4_convergence`.

use gis_bench::{
    print_csv, problem_with_relative_spec, surrogate_read_model, write_json_artifact, MASTER_SEED,
};
use gis_core::{
    run_importance_sampling, GisConfig, GradientImportanceSampling, ImportanceSamplingConfig,
    MinimumNormIs, MnisConfig, MonteCarlo, MonteCarloConfig, Proposal, ScaledSigmaSampling,
    SphericalSampling, SphericalSamplingConfig, SssConfig,
};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ConvergenceSeries {
    method: String,
    evaluations: Vec<u64>,
    estimates: Vec<f64>,
    relative_errors: Vec<f64>,
    /// The method's final reported estimate (for scaled-sigma sampling this is
    /// the extrapolated value, not the last raw trace point).
    final_estimate: f64,
}

fn series_from_trace(
    method: &str,
    trace: &[gis_core::ConvergencePoint],
    final_estimate: f64,
) -> ConvergenceSeries {
    ConvergenceSeries {
        method: method.to_string(),
        evaluations: trace.iter().map(|p| p.evaluations).collect(),
        estimates: trace.iter().map(|p| p.estimate).collect(),
        relative_errors: trace.iter().map(|p| p.relative_error).collect(),
        final_estimate,
    }
}

fn print_series(series: &ConvergenceSeries) {
    let rows: Vec<String> = series
        .evaluations
        .iter()
        .zip(series.estimates.iter())
        .zip(series.relative_errors.iter())
        .map(|((n, p), r)| format!("{n},{p:.6e},{r:.4}"))
        .collect();
    print_csv(
        &format!("fig4_convergence_{}", series.method),
        "evaluations,estimate,relative_error",
        &rows,
    );
}

fn main() {
    let spec_factor = 1.8;
    let model = surrogate_read_model();
    let nominal = model.nominal_metric();
    let base = problem_with_relative_spec(model, nominal, spec_factor);
    let master = RngStream::from_seed(MASTER_SEED + 7);
    let mut all_series = Vec::new();

    // Reference value: a long importance-sampling run centred on the MPFP found
    // by the gradient search (200k samples).
    let reference = {
        let problem = base.fork();
        let gis = GradientImportanceSampling::new(GisConfig::default());
        let outcome = gis.run(&problem, &mut master.split(99));
        let shift = Vector::from_slice(&outcome.diagnostics.shift.clone().unwrap());
        let long_problem = base.fork();
        let (result, _) = run_importance_sampling(
            &long_problem,
            &Proposal::defensive_mixture(shift, 0.1),
            &ImportanceSamplingConfig {
                max_samples: 200_000,
                batch_size: 10_000,
                target_relative_error: 0.01,
                min_failures: 500,
            },
            &mut master.split(100),
            "reference-is",
            0,
        );
        result.failure_probability
    };
    println!("reference P_fail = {reference:.4e} (long importance-sampling run)");

    // Gradient IS.
    {
        let problem = base.fork();
        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 50_000,
                batch_size: 500,
                target_relative_error: 0.02,
                min_failures: 50,
            },
            ..GisConfig::default()
        });
        let outcome = gis.run(&problem, &mut master.split(1));
        let series = series_from_trace("gradient-is", &outcome.result.trace, outcome.result.failure_probability);
        print_series(&series);
        all_series.push(series);
    }

    // Minimum-norm IS.
    {
        let problem = base.fork();
        let mnis = MinimumNormIs::new(MnisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 50_000,
                batch_size: 500,
                target_relative_error: 0.02,
                min_failures: 50,
            },
            ..MnisConfig::default()
        });
        let (result, _, _) = mnis.run(&problem, &mut master.split(2));
        let series = series_from_trace("minimum-norm-is", &result.trace, result.failure_probability);
        print_series(&series);
        all_series.push(series);
    }

    // Spherical sampling.
    {
        let problem = base.fork();
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 3_000,
            target_relative_error: 0.02,
            ..SphericalSamplingConfig::default()
        });
        let result = spherical.run(&problem, &mut master.split(3));
        let series = series_from_trace("spherical-sampling", &result.trace, result.failure_probability);
        print_series(&series);
        all_series.push(series);
    }

    // Scaled-sigma sampling (its trace is per-scale rather than per-batch).
    {
        let problem = base.fork();
        let sss = ScaledSigmaSampling::new(SssConfig {
            samples_per_scale: 10_000,
            ..SssConfig::default()
        });
        let (result, _) = sss.run(&problem, &mut master.split(4));
        let series = series_from_trace("scaled-sigma-sampling", &result.trace, result.failure_probability);
        print_series(&series);
        all_series.push(series);
    }

    // Brute-force Monte Carlo (will not converge at this sigma level; its trace
    // demonstrates why).
    {
        let problem = base.fork();
        let mc = MonteCarlo::new(MonteCarloConfig {
            max_samples: 200_000,
            batch_size: 10_000,
            target_relative_error: 0.1,
            min_failures: 10,
        });
        let result = mc.run(&problem, &mut master.split(5));
        let series = series_from_trace("monte-carlo", &result.trace, result.failure_probability);
        print_series(&series);
        all_series.push(series);
    }

    for s in &all_series {
        let final_estimate = s.final_estimate;
        let final_evals = s.evaluations.last().copied().unwrap_or(0);
        let error_vs_reference = if reference > 0.0 && final_estimate > 0.0 {
            (final_estimate - reference).abs() / reference
        } else {
            f64::NAN
        };
        println!(
            "{:<24} final estimate {:.4e} after {:>8} sims (deviation from reference: {:.1}%)",
            s.method,
            final_estimate,
            final_evals,
            error_vs_reference * 100.0
        );
    }

    write_json_artifact("fig4_convergence", &all_series);
}
