//! Figure 7 — Figure of merit (1 / (ρ²·N)) versus the number of simulations.
//!
//! The figure of merit normalizes estimator efficiency by cost, so methods can
//! be compared independently of where they were stopped. The series are
//! derived from the convergence traces of each method on the surrogate
//! read-access-time problem; a higher, flatter curve is better.
//!
//! Run with `cargo run --release -p gis-bench --bin fig7_fom`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    print_csv, problem_with_relative_spec, scaled, surrogate_read_model, write_json_artifact,
    MASTER_SEED,
};
use gis_core::{
    figure_of_merit, Estimator, GisConfig, GradientImportanceSampling, ImportanceSamplingConfig,
    MinimumNormIs, MnisConfig, MonteCarlo, MonteCarloConfig, SphericalSampling,
    SphericalSamplingConfig,
};
use gis_stats::RngStream;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct FomSeries {
    method: String,
    evaluations: Vec<u64>,
    figure_of_merit: Vec<f64>,
}

fn fom_series(method: &str, trace: &[gis_core::ConvergencePoint]) -> FomSeries {
    let evaluations: Vec<u64> = trace.iter().map(|p| p.evaluations).collect();
    let fom: Vec<f64> = trace
        .iter()
        .map(|p| figure_of_merit(p.relative_error, p.evaluations))
        .collect();
    let rows: Vec<String> = evaluations
        .iter()
        .zip(fom.iter())
        .map(|(n, f)| format!("{n},{f:.6e}"))
        .collect();
    print_csv(
        &format!("fig7_fom_{method}"),
        "evaluations,figure_of_merit",
        &rows,
    );
    FomSeries {
        method: method.to_string(),
        evaluations,
        figure_of_merit: fom,
    }
}

fn main() {
    let model = surrogate_read_model();
    let nominal = model.nominal_metric();
    let base = problem_with_relative_spec(model, nominal, 1.8);
    let master = RngStream::from_seed(MASTER_SEED + 13);
    let mut all = Vec::new();

    let sampling = ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: scaled(40_000, 4_000),
        batch_size: 500,
        target_relative_error: 0.02,
        min_failures: 50,
    };

    {
        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: sampling.clone(),
            ..GisConfig::default()
        });
        let outcome = gis.estimate(&base.fork(), &mut master.split(1));
        all.push(fom_series("gradient-is", &outcome.result.trace));
    }
    {
        let mnis = MinimumNormIs::new(MnisConfig {
            sampling: sampling.clone(),
            ..MnisConfig::default()
        });
        let result = mnis.estimate(&base.fork(), &mut master.split(2)).result;
        all.push(fom_series("minimum-norm-is", &result.trace));
    }
    {
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: scaled(3_000, 300),
            target_relative_error: 0.02,
            ..SphericalSamplingConfig::default()
        });
        let result = spherical
            .estimate(&base.fork(), &mut master.split(3))
            .result;
        all.push(fom_series("spherical-sampling", &result.trace));
    }
    {
        let mc = MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: scaled(200_000, 20_000),
            batch_size: 10_000,
            target_relative_error: 0.02,
            min_failures: 10,
        });
        let result = mc.estimate(&base.fork(), &mut master.split(4)).result;
        all.push(fom_series("monte-carlo", &result.trace));
    }

    println!("\nfinal figures of merit (higher is better):");
    for series in &all {
        let last = series.figure_of_merit.last().copied().unwrap_or(0.0);
        let evals = series.evaluations.last().copied().unwrap_or(0);
        println!(
            "{:<24} {:>12.3e}  (after {} sims)",
            series.method, last, evals
        );
    }

    write_json_artifact("fig7_fom", &all);
}
