//! Statistical calibration harness over the analytic benchmark-problem
//! library: is every estimator's reported error bar honest?
//!
//! Runs N independent replications of all five estimators on the
//! [`gis_core::problems`] suite (closed-form ground truth) and reduces them
//! to empirical confidence-interval coverage (tested against the binomial
//! acceptance band of the nominal level), relative bias, relative RMSE and
//! sample efficiency per estimator — the standing yardstick every numerics
//! or estimator change is judged against.
//!
//! Flags:
//!
//! * `--fast` — the reduced CI matrix ([`BenchmarkProblem::fast_suite`],
//!   100 replications). In this mode the binary **asserts** that every
//!   (problem, estimator) cell's empirical coverage lies within the binomial
//!   acceptance band, and that the report is bit-identical when the
//!   replication matrix is dispatched at 1 and 4 threads — the CI gate for
//!   the calibration contract.
//! * (default) — the full matrix ([`BenchmarkProblem::standard_suite`],
//!   100 replications), which includes the 576-dimension ladder rung and the
//!   far-tail cells; honesty violations are *reported*, not asserted (they
//!   are findings, e.g. scaled-sigma extrapolation on union geometries).
//!
//! Output: `BENCH_calibration.json` at the workspace root.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{workspace_root, MASTER_SEED};
use gis_core::{
    standard_estimators, BenchmarkProblem, CalibrationReport, Calibrator, ConvergencePolicy,
    Estimator, ExecutionConfig, GisConfig, GradientImportanceSampling, ImportanceSamplingConfig,
    MinimumNormIs, MnisConfig, MonteCarlo, MonteCarloConfig, ScaledSigmaSampling,
    SphericalSampling, SphericalSamplingConfig, SssConfig,
};
use serde::Serialize;

/// Evaluation budget per replication in the gated fast matrix.
const FAST_BUDGET: u64 = 16_000;
/// Two-sided binomial acceptance-band alpha. Tightened from 0.002 (band
/// [80, 98]/100) to 0.005 (band [81, 97]/100) once the first-passage
/// stopping correction landed: coverage under the production stopping rule
/// no longer leans anti-conservative, so the wider guard band was slack.
const BAND_ALPHA: f64 = 0.005;
/// Evaluation budget per replication in the full matrix (kept lower because
/// a 576-dimension replication costs ~10⁷ quantile/normal evaluations).
const FULL_BUDGET: u64 = 20_000;

#[derive(Debug, Serialize)]
struct CalibrationArtifact {
    master_seed: u64,
    fast_mode: bool,
    replications: u32,
    confidence_level: f64,
    band_alpha: f64,
    evaluation_budget: u64,
    all_within_band: bool,
    worst_band_margin: f64,
    /// Before/after coverage of the production stopping rule (legacy
    /// uncorrected criterion vs the first-passage-corrected one).
    stopping_rule_ab: StoppingRuleAb,
    report: CalibrationReport,
}

/// One arm of the stopping-rule A/B, reduced to its honesty verdict.
#[derive(Debug, Serialize)]
struct StoppingArm {
    corrected_stopping: bool,
    all_within_band: bool,
    violations: usize,
    worst_band_margin: f64,
}

/// Per-cell before/after coverage under the production stopping rule.
#[derive(Debug, Serialize)]
struct StoppingAbRow {
    problem: String,
    estimator: String,
    covered_legacy: u32,
    covered_corrected: u32,
    within_band_legacy: bool,
    within_band_corrected: bool,
}

/// The stopping-rule before/after block of `BENCH_calibration.json`.
///
/// The main calibration matrix pins every method to its full budget, so it
/// calibrates the error-bar *formula* and is blind to optional stopping.
/// This block re-runs the fast suite under the *production* stopping rule
/// (±10% target, ≥20 failures) twice — once with the legacy uncorrected
/// criterion, once with the first-passage-corrected one — and records both
/// coverages. The corrected arm is the CI gate; the legacy arm documents
/// the anti-conservative bias the correction repairs.
#[derive(Debug, Serialize)]
struct StoppingRuleAb {
    replications: u32,
    evaluation_budget: u64,
    target_relative_error: f64,
    min_failures: u64,
    band_lower: f64,
    band_upper: f64,
    legacy: StoppingArm,
    corrected: StoppingArm,
    rows: Vec<StoppingAbRow>,
}

/// The five standard estimators with `corrected_stopping` forced to the
/// given arm. Scaled-sigma has no sequential stopping rule (fixed per-scale
/// sample counts), so it is identical in both arms and serves as the
/// in-band control.
fn stopping_estimators(corrected: bool) -> Vec<Box<dyn Estimator>> {
    let sampling = ImportanceSamplingConfig {
        corrected_stopping: corrected,
        ..ImportanceSamplingConfig::default()
    };
    vec![
        Box::new(GradientImportanceSampling::new(GisConfig {
            sampling: sampling.clone(),
            ..GisConfig::default()
        })),
        Box::new(MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: corrected,
            ..MonteCarloConfig::default()
        })),
        Box::new(MinimumNormIs::new(MnisConfig {
            sampling,
            ..MnisConfig::default()
        })),
        Box::new(SphericalSampling::new(SphericalSamplingConfig {
            corrected_stopping: corrected,
            ..SphericalSamplingConfig::default()
        })),
        Box::new(ScaledSigmaSampling::new(SssConfig::default())),
    ]
}

/// Runs one arm of the stopping-rule A/B: the fast suite under the
/// production stopping rule with the arm's stopping criterion.
fn stopping_arm_report(corrected: bool, matrix: ExecutionConfig) -> CalibrationReport {
    Calibrator::new()
        .master_seed(MASTER_SEED + 53)
        .replications(100)
        .confidence_level(0.9)
        .band_alpha(BAND_ALPHA)
        .convergence_policy(
            ConvergencePolicy::with_budget(FAST_BUDGET)
                .target_relative_error(0.1)
                .min_failures(20),
        )
        .problems(BenchmarkProblem::fast_suite())
        .estimators(stopping_estimators(corrected))
        .matrix(matrix)
        .run()
}

fn stopping_rule_ab(matrix: ExecutionConfig) -> StoppingRuleAb {
    let legacy = stopping_arm_report(false, matrix);
    let corrected = stopping_arm_report(true, matrix);
    let arm = |report: &CalibrationReport, flag: bool| StoppingArm {
        corrected_stopping: flag,
        all_within_band: report.all_within_band(),
        violations: report.violations().len(),
        worst_band_margin: report.worst_band_margin(),
    };
    let rows = legacy
        .rows
        .iter()
        .zip(&corrected.rows)
        .map(|(l, c)| {
            assert_eq!((&l.problem, &l.estimator), (&c.problem, &c.estimator));
            StoppingAbRow {
                problem: l.problem.clone(),
                estimator: l.estimator.clone(),
                covered_legacy: l.covered,
                covered_corrected: c.covered,
                within_band_legacy: l.within_band,
                within_band_corrected: c.within_band,
            }
        })
        .collect();
    StoppingRuleAb {
        replications: legacy.replications,
        evaluation_budget: FAST_BUDGET,
        target_relative_error: 0.1,
        min_failures: 20,
        band_lower: legacy.rows.first().map_or(0.0, |r| r.band_lower),
        band_upper: legacy.rows.first().map_or(1.0, |r| r.band_upper),
        legacy: arm(&legacy, false),
        corrected: arm(&corrected, true),
        rows,
    }
}

fn calibrator(fast: bool) -> Calibrator {
    // 100 replications give a [80, 98]/100 acceptance band at alpha 0.002.
    let (suite, replications) = if fast {
        (BenchmarkProblem::fast_suite(), 100)
    } else {
        (BenchmarkProblem::standard_suite(), 100)
    };
    let budget = budget(fast);
    // The gated fast matrix pins every method to the full budget (an
    // unreachable accuracy target disables early stopping): what is being
    // calibrated is the *error-bar formula* at a fixed cost. The full matrix
    // keeps the production stopping rule (±10% at 90%, as the evaluation
    // tables quote), now with the first-passage correction on by default;
    // the legacy-vs-corrected coverage comparison lives in the dedicated
    // `stopping_rule_ab` block.
    let policy = if fast {
        ConvergencePolicy::with_budget(budget)
            .target_relative_error(1e-12)
            .min_failures(u64::MAX)
    } else {
        ConvergencePolicy::with_budget(budget)
            .target_relative_error(0.1)
            .min_failures(20)
    };
    Calibrator::new()
        .master_seed(MASTER_SEED + 53)
        .replications(replications)
        .confidence_level(0.9)
        .band_alpha(BAND_ALPHA)
        .convergence_policy(policy)
        .problems(suite)
        .estimators(standard_estimators())
}

fn budget(fast: bool) -> u64 {
    if fast {
        FAST_BUDGET
    } else {
        FULL_BUDGET
    }
}

fn print_report(report: &CalibrationReport) {
    println!(
        "\ncalibration: {} replications/cell, {:.0}% nominal intervals, acceptance band \
         [{:.0}%, {:.0}%] (alpha {})",
        report.replications,
        report.confidence_level * 100.0,
        report.rows.first().map_or(0.0, |r| r.band_lower * 100.0),
        report.rows.first().map_or(0.0, |r| r.band_upper * 100.0),
        report.band_alpha
    );
    println!(
        "{:<28} {:<22} {:>9} {:>5} {:>8} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "problem",
        "method",
        "coverage",
        "band",
        "bias[%]",
        "rmse[%]",
        "claim[%]",
        "conv[%]",
        "evals",
        "FOM"
    );
    for row in &report.rows {
        println!(
            "{:<28} {:<22} {:>3}/{:<5} {:>5} {:>8.1} {:>8.1} {:>8.1} {:>8.0} {:>10.0} {:>6.3}",
            row.problem,
            row.estimator,
            row.covered,
            row.replications,
            if row.within_band { "ok" } else { "FAIL" },
            row.relative_bias * 100.0,
            row.relative_rmse * 100.0,
            row.mean_reported_relative_error * 100.0,
            row.converged_fraction * 100.0,
            row.mean_evaluations,
            row.empirical_figure_of_merit * 1e3,
        );
    }
}

fn main() {
    let fast = gis_bench::fast_mode();
    println!(
        "bench_calibration: {} matrix, master seed {}",
        if fast { "fast (CI gate)" } else { "full" },
        MASTER_SEED + 53
    );

    let report = calibrator(fast).matrix(ExecutionConfig::from_env()).run();
    print_report(&report);

    // Stopping-rule before/after: the production rule (±10%, ≥20 failures)
    // on the fast suite, legacy criterion vs first-passage-corrected.
    let ab = stopping_rule_ab(ExecutionConfig::from_env());
    println!(
        "\nstopping-rule A/B (production rule, {} replications, band [{:.0}, {:.0}]/100):",
        ab.replications,
        ab.band_lower * 100.0,
        ab.band_upper * 100.0
    );
    println!(
        "{:<28} {:<22} {:>10} {:>12}",
        "problem", "method", "legacy", "corrected"
    );
    for row in &ab.rows {
        println!(
            "{:<28} {:<22} {:>6}/100{} {:>8}/100{}",
            row.problem,
            row.estimator,
            row.covered_legacy,
            if row.within_band_legacy { " " } else { "!" },
            row.covered_corrected,
            if row.within_band_corrected { " " } else { "!" },
        );
    }
    println!(
        "legacy: {} violation(s), worst margin {:+.0}; corrected: {} violation(s), worst margin {:+.0}",
        ab.legacy.violations,
        ab.legacy.worst_band_margin,
        ab.corrected.violations,
        ab.corrected.worst_band_margin
    );
    // CI gates, asserted in both modes (the A/B always runs on the fast
    // suite, so they are mode-independent):
    //
    // 1. The corrected production rule is honest everywhere, at the
    //    tightened band. The hardest cell is minimum-norm IS on the
    //    correlated 12-d geometry, where the legacy rule stopped on lucky
    //    dips of an already-optimistic variance estimate; the persistence
    //    requirement plus effective-failure inflation brings it back inside.
    assert!(
        ab.corrected.all_within_band,
        "corrected stopping rule outside the acceptance band in {} cell(s), worst margin {:+.0}",
        ab.corrected.violations, ab.corrected.worst_band_margin
    );
    // 2. The before/after still demonstrates the defect it fixes: the
    //    legacy rule must violate the (tightened) band somewhere, otherwise
    //    this block has lost its evidentiary value and should be revisited.
    assert!(
        ab.legacy.violations > ab.corrected.violations,
        "legacy stopping rule shows no anti-conservative cell \
         (legacy {}, corrected {}); the A/B no longer demonstrates the fix",
        ab.legacy.violations,
        ab.corrected.violations
    );

    if fast {
        // CI gate 1: every cell's coverage inside its binomial band.
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "coverage outside the acceptance band in {} cell(s): {}",
            violations.len(),
            violations
                .iter()
                .map(|r| format!(
                    "{}/{} ({}/{})",
                    r.problem, r.estimator, r.covered, r.replications
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
        // CI gate 2: the replication matrix is bit-identical across dispatch
        // widths. The first report ran at the environment's width (1 locally,
        // 4 under CI's GIS_THREADS); one cross-check at a width guaranteed to
        // differ from both proves the invariance without a third full run.
        let cross = calibrator(true)
            .matrix(ExecutionConfig::with_threads(3))
            .run();
        assert_eq!(
            cross, report,
            "calibration report diverged across matrix thread counts"
        );
        println!(
            "\nfast gate: all {} cells within the acceptance band \
             (worst margin {:+.0} replications); report bit-identical across matrix widths",
            report.rows.len(),
            report.worst_band_margin()
        );
    } else if !report.all_within_band() {
        println!(
            "\nnote: {} cell(s) outside the acceptance band (full matrix includes \
             stress geometries where some baselines are knowingly dishonest):",
            report.violations().len()
        );
        for row in report.violations() {
            println!(
                "  {}/{} covered {}/{} (band [{:.0}, {:.0}])",
                row.problem,
                row.estimator,
                row.covered,
                row.replications,
                row.band_lower * row.replications as f64,
                row.band_upper * row.replications as f64
            );
        }
    }

    let artifact = CalibrationArtifact {
        master_seed: MASTER_SEED + 53,
        fast_mode: fast,
        replications: report.replications,
        confidence_level: report.confidence_level,
        band_alpha: report.band_alpha,
        evaluation_budget: budget(fast),
        all_within_band: report.all_within_band(),
        worst_band_margin: report.worst_band_margin(),
        stopping_rule_ab: ab,
        report,
    };
    let path = workspace_root().join("BENCH_calibration.json");
    let json = serde_json::to_string_pretty(&artifact).expect("calibration report serializes");
    std::fs::write(&path, json).expect("calibration report is writable");
    println!("[artifact] {}", path.display());
}
