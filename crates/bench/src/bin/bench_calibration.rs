//! Statistical calibration harness over the analytic benchmark-problem
//! library: is every estimator's reported error bar honest?
//!
//! Runs N independent replications of all five estimators on the
//! [`gis_core::problems`] suite (closed-form ground truth) and reduces them
//! to empirical confidence-interval coverage (tested against the binomial
//! acceptance band of the nominal level), relative bias, relative RMSE and
//! sample efficiency per estimator — the standing yardstick every numerics
//! or estimator change is judged against.
//!
//! Flags:
//!
//! * `--fast` — the reduced CI matrix ([`BenchmarkProblem::fast_suite`],
//!   100 replications). In this mode the binary **asserts** that every
//!   (problem, estimator) cell's empirical coverage lies within the binomial
//!   acceptance band, and that the report is bit-identical when the
//!   replication matrix is dispatched at 1 and 4 threads — the CI gate for
//!   the calibration contract.
//! * (default) — the full matrix ([`BenchmarkProblem::standard_suite`],
//!   100 replications), which includes the 576-dimension ladder rung and the
//!   far-tail cells; honesty violations are *reported*, not asserted (they
//!   are findings, e.g. scaled-sigma extrapolation on union geometries).
//!
//! Output: `BENCH_calibration.json` at the workspace root.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{workspace_root, MASTER_SEED};
use gis_core::{
    standard_estimators, BenchmarkProblem, CalibrationReport, Calibrator, ConvergencePolicy,
    ExecutionConfig,
};
use serde::Serialize;

/// Evaluation budget per replication in the gated fast matrix.
const FAST_BUDGET: u64 = 16_000;
/// Evaluation budget per replication in the full matrix (kept lower because
/// a 576-dimension replication costs ~10⁷ quantile/normal evaluations).
const FULL_BUDGET: u64 = 20_000;

#[derive(Debug, Serialize)]
struct CalibrationArtifact {
    master_seed: u64,
    fast_mode: bool,
    replications: u32,
    confidence_level: f64,
    band_alpha: f64,
    evaluation_budget: u64,
    all_within_band: bool,
    worst_band_margin: f64,
    report: CalibrationReport,
}

fn calibrator(fast: bool) -> Calibrator {
    // 100 replications give a [80, 98]/100 acceptance band at alpha 0.002.
    let (suite, replications) = if fast {
        (BenchmarkProblem::fast_suite(), 100)
    } else {
        (BenchmarkProblem::standard_suite(), 100)
    };
    let budget = budget(fast);
    // The gated fast matrix pins every method to the full budget (an
    // unreachable accuracy target disables early stopping): what is being
    // calibrated is the *error-bar formula* at a fixed cost. The full matrix
    // keeps the production stopping rule (±10% at 90%, as the evaluation
    // tables quote) so its report also reflects the mild anti-conservative
    // bias that optional stopping adds — a finding, not a gate.
    let policy = if fast {
        ConvergencePolicy::with_budget(budget)
            .target_relative_error(1e-12)
            .min_failures(u64::MAX)
    } else {
        ConvergencePolicy::with_budget(budget)
            .target_relative_error(0.1)
            .min_failures(20)
    };
    Calibrator::new()
        .master_seed(MASTER_SEED + 53)
        .replications(replications)
        .confidence_level(0.9)
        .band_alpha(0.002)
        .convergence_policy(policy)
        .problems(suite)
        .estimators(standard_estimators())
}

fn budget(fast: bool) -> u64 {
    if fast {
        FAST_BUDGET
    } else {
        FULL_BUDGET
    }
}

fn print_report(report: &CalibrationReport) {
    println!(
        "\ncalibration: {} replications/cell, {:.0}% nominal intervals, acceptance band \
         [{:.0}%, {:.0}%] (alpha {})",
        report.replications,
        report.confidence_level * 100.0,
        report.rows.first().map_or(0.0, |r| r.band_lower * 100.0),
        report.rows.first().map_or(0.0, |r| r.band_upper * 100.0),
        report.band_alpha
    );
    println!(
        "{:<28} {:<22} {:>9} {:>5} {:>8} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "problem",
        "method",
        "coverage",
        "band",
        "bias[%]",
        "rmse[%]",
        "claim[%]",
        "conv[%]",
        "evals",
        "FOM"
    );
    for row in &report.rows {
        println!(
            "{:<28} {:<22} {:>3}/{:<5} {:>5} {:>8.1} {:>8.1} {:>8.1} {:>8.0} {:>10.0} {:>6.3}",
            row.problem,
            row.estimator,
            row.covered,
            row.replications,
            if row.within_band { "ok" } else { "FAIL" },
            row.relative_bias * 100.0,
            row.relative_rmse * 100.0,
            row.mean_reported_relative_error * 100.0,
            row.converged_fraction * 100.0,
            row.mean_evaluations,
            row.empirical_figure_of_merit * 1e3,
        );
    }
}

fn main() {
    let fast = gis_bench::fast_mode();
    println!(
        "bench_calibration: {} matrix, master seed {}",
        if fast { "fast (CI gate)" } else { "full" },
        MASTER_SEED + 53
    );

    let report = calibrator(fast).matrix(ExecutionConfig::from_env()).run();
    print_report(&report);

    if fast {
        // CI gate 1: every cell's coverage inside its binomial band.
        let violations = report.violations();
        assert!(
            violations.is_empty(),
            "coverage outside the acceptance band in {} cell(s): {}",
            violations.len(),
            violations
                .iter()
                .map(|r| format!(
                    "{}/{} ({}/{})",
                    r.problem, r.estimator, r.covered, r.replications
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
        // CI gate 2: the replication matrix is bit-identical across dispatch
        // widths. The first report ran at the environment's width (1 locally,
        // 4 under CI's GIS_THREADS); one cross-check at a width guaranteed to
        // differ from both proves the invariance without a third full run.
        let cross = calibrator(true)
            .matrix(ExecutionConfig::with_threads(3))
            .run();
        assert_eq!(
            cross, report,
            "calibration report diverged across matrix thread counts"
        );
        println!(
            "\nfast gate: all {} cells within the acceptance band \
             (worst margin {:+.0} replications); report bit-identical across matrix widths",
            report.rows.len(),
            report.worst_band_margin()
        );
    } else if !report.all_within_band() {
        println!(
            "\nnote: {} cell(s) outside the acceptance band (full matrix includes \
             stress geometries where some baselines are knowingly dishonest):",
            report.violations().len()
        );
        for row in report.violations() {
            println!(
                "  {}/{} covered {}/{} (band [{:.0}, {:.0}])",
                row.problem,
                row.estimator,
                row.covered,
                row.replications,
                row.band_lower * row.replications as f64,
                row.band_upper * row.replications as f64
            );
        }
    }

    let artifact = CalibrationArtifact {
        master_seed: MASTER_SEED + 53,
        fast_mode: fast,
        replications: report.replications,
        confidence_level: report.confidence_level,
        band_alpha: report.band_alpha,
        evaluation_budget: budget(fast),
        all_within_band: report.all_within_band(),
        worst_band_margin: report.worst_band_margin(),
        report,
    };
    let path = workspace_root().join("BENCH_calibration.json");
    let json = serde_json::to_string_pretty(&artifact).expect("calibration report serializes");
    std::fs::write(&path, json).expect("calibration report is writable");
    println!("[artifact] {}", path.display());
}
