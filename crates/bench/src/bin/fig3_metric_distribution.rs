//! Figure 3 — Distribution of the read access time under process variation.
//!
//! Draws a plain Monte Carlo population of read access times from the surrogate
//! (50 000 samples) and a smaller population from the transient testbench
//! (2 000 samples), prints histogram bins for both, and reports tail quantiles.
//! The long right tail — the reason high-sigma extraction is hard — is clearly
//! visible in both populations.
//!
//! Run with `cargo run --release -p gis-bench --bin fig3_metric_distribution`.

// Experiment driver: abort-on-error is the right failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_bench::{
    print_csv, scaled, surrogate_read_model, transient_model, write_json_artifact, MASTER_SEED,
};
use gis_core::{PerformanceModel, SramMetric};
use gis_stats::{quantile_of, Histogram, RngStream};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct DistributionSummary {
    label: String,
    samples: usize,
    mean: f64,
    quantile_50: f64,
    quantile_99: f64,
    quantile_999: f64,
    max: f64,
    histogram_centers: Vec<f64>,
    histogram_densities: Vec<f64>,
}

fn summarize(label: &str, values: &[f64]) -> DistributionSummary {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let hist_max = quantile_of(values, 0.995) * 1.2;
    let hist = Histogram::new(0.0, hist_max, 60).expect("valid histogram range");
    let mut hist = hist;
    for &v in values {
        hist.add(v);
    }
    let centers: Vec<f64> = (0..hist.num_bins()).map(|i| hist.bin_center(i)).collect();
    let densities: Vec<f64> = (0..hist.num_bins()).map(|i| hist.density(i)).collect();

    let rows: Vec<String> = centers
        .iter()
        .zip(densities.iter())
        .map(|(c, d)| format!("{c:.4e},{d:.4e}"))
        .collect();
    print_csv(
        &format!("fig3_histogram_{label}"),
        "metric_seconds,density",
        &rows,
    );

    DistributionSummary {
        label: label.to_string(),
        samples: values.len(),
        mean,
        quantile_50: quantile_of(values, 0.5),
        quantile_99: quantile_of(values, 0.99),
        quantile_999: quantile_of(values, 0.999),
        max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        histogram_centers: centers,
        histogram_densities: densities,
    }
}

fn main() {
    let mut rng = RngStream::from_seed(MASTER_SEED + 5);

    // Surrogate population.
    let surrogate = surrogate_read_model();
    let surrogate_samples: Vec<f64> = (0..scaled(50_000, 5_000))
        .map(|_| surrogate.evaluate(&rng.standard_normal_vector(surrogate.dim())))
        .collect();
    let surrogate_summary = summarize("surrogate", &surrogate_samples);

    // Transient population (smaller because each sample is a full simulation).
    let transient = transient_model(SramMetric::ReadAccessTime);
    let transient_samples: Vec<f64> = (0..scaled(2_000, 150))
        .map(|_| transient.evaluate(&rng.standard_normal_vector(transient.dim())))
        .collect();
    let transient_summary = summarize("transient", &transient_samples);

    for s in [&surrogate_summary, &transient_summary] {
        println!(
            "{:<10}: n = {:6}, mean = {:.1} ps, p50 = {:.1} ps, p99 = {:.1} ps, p99.9 = {:.1} ps, max = {:.1} ps",
            s.label,
            s.samples,
            s.mean * 1e12,
            s.quantile_50 * 1e12,
            s.quantile_99 * 1e12,
            s.quantile_999 * 1e12,
            s.max * 1e12
        );
    }
    println!(
        "tail heaviness (p99.9 / p50): surrogate = {:.2}, transient = {:.2}",
        surrogate_summary.quantile_999 / surrogate_summary.quantile_50,
        transient_summary.quantile_999 / transient_summary.quantile_50
    );

    write_json_artifact(
        "fig3_metric_distribution",
        &vec![surrogate_summary, transient_summary],
    );
}
