//! Shared helpers for the experiment binaries and criterion benchmarks that
//! regenerate the tables and figures of the evaluation.
//!
//! Each table/figure of the paper's evaluation has a dedicated binary in
//! `src/bin/` (see DESIGN.md for the index). The helpers here build the
//! standard problems (read/write/disturb on the surrogate or the transient
//! testbench), format comparison rows consistently, and dump machine-readable
//! JSON next to the printed tables so EXPERIMENTS.md can reference stable
//! artifacts.

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use gis_core::{
    default_sram_variation_space, AnalysisReport, FailureProblem, PerformanceModel, Spec,
    SramMetric, SramSurrogateModel, SramTransientModel,
};
use gis_sram::{SramCellConfig, SramSurrogate, SramTestbench};
use gis_variation::PelgromModel;
use serde::Serialize;
use std::path::{Path, PathBuf};

pub use gis_core::ComparisonRow;

/// Master seed from which every experiment derives its random streams, so the
/// whole evaluation is reproducible end to end.
pub const MASTER_SEED: u64 = 20180319;

/// Directory (relative to the workspace root) where experiment binaries drop
/// their JSON artifacts.
pub const RESULTS_DIR: &str = "results";

/// `true` when `--fast` was passed on the command line: every experiment
/// binary supports a reduced CI-smoke mode that shrinks its budgets/grids so
/// the whole artifact set regenerates in seconds while still exercising the
/// full code path and emitting parseable JSON.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// Picks the full or the reduced (`--fast`) value of a budget knob.
pub fn scaled<T>(full: T, fast: T) -> T {
    if fast_mode() {
        fast
    } else {
        full
    }
}

/// Returns the value following `flag` in `args`, if present.
pub fn parse_flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Returns the `--connect HOST:PORT` address when the binary was asked to
/// run as a thin client against a `gis-serve` daemon.
pub fn connect_addr() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    parse_flag_value(&args, "--connect")
}

/// Thin-client mode shared by the experiment binaries: submits `job` to the
/// `gis-serve` daemon at `addr`, streams per-cell progress to stdout and
/// returns the receipt. The returned report is bit-identical to running the
/// identical configuration locally (the daemon always integrates on the
/// default sparse kernel, so a client running under `GIS_FAST_LANE=1`
/// compares against the default lane, not the fast one).
///
/// Submission is self-healing: a server that dies or drops the socket
/// mid-stream is retried under the default [`gis_serve::RetryPolicy`]
/// (exponential backoff with deterministic jitter). Resubmission is
/// idempotent — completed cells replay from the daemon's journal-backed
/// cache, and already-printed progress rows are never repeated.
///
/// Panics on final connection or job failure — abort-on-error is the right
/// failure mode for experiment drivers.
pub fn submit_served_job(addr: &str, job: &gis_serve::JobSpec) -> gis_serve::JobReceipt {
    let policy = gis_serve::RetryPolicy::default();
    let receipt = gis_serve::submit_with_recovery(addr, job, &policy, &mut |cell| {
        println!(
            "  [{}/{}] {} / {}{}",
            cell.completed_cells,
            cell.total_cells,
            cell.problem,
            cell.estimator,
            if cell.cached { " (cached)" } else { "" }
        );
    })
    .unwrap_or_else(|e| panic!("served job failed after retries: {e}"));
    if receipt.reconnects > 0 {
        println!(
            "  (stream interrupted; reconnected {} time{} and resumed from the server cache)",
            receipt.reconnects,
            if receipt.reconnects == 1 { "" } else { "s" }
        );
    }
    println!(
        "served job {}: {} cells executed, {} from cache",
        receipt.job_id, receipt.cells_executed, receipt.cells_cached
    );
    receipt
}

/// Builds the default surrogate-backed read-access-time model.
pub fn surrogate_read_model() -> SramSurrogateModel {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    SramSurrogateModel::new(
        SramSurrogate::typical_45nm(),
        space,
        SramMetric::ReadAccessTime,
    )
}

/// Builds the default surrogate-backed write-delay model.
pub fn surrogate_write_model() -> SramSurrogateModel {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    SramSurrogateModel::new(SramSurrogate::typical_45nm(), space, SramMetric::WriteDelay)
}

/// Environment variable that switches [`transient_model`] onto the
/// calibration-gated fast-math kernel ([`gis_core::TransientKernel::Fast`]).
/// Any non-empty value other than `0` enables it.
///
/// The fast lane is deterministic (bit-identical across runs and thread
/// counts) but **not** bit-identical to the sparse kernel; it is admissible
/// for experiments because the CI gate runs the calibration matrix and the
/// evaluation harness with this variable set and asserts the fast-lane
/// estimates agree with the exact kernel (see README "Performance &
/// parallelism" for the tolerance contract).
pub const FAST_LANE_ENV_VAR: &str = "GIS_FAST_LANE";

/// Reads the `GIS_FAST_LANE` environment variable — `true` when the fast
/// transcendental lane is requested. Single definition of the contract;
/// reuse it instead of re-parsing the variable.
pub fn fast_lane_enabled() -> bool {
    std::env::var(FAST_LANE_ENV_VAR)
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false)
}

/// Builds the default transient-simulation-backed model for `metric`: the
/// sparse kernel, or the fast lane when `GIS_FAST_LANE` is set (see
/// [`FAST_LANE_ENV_VAR`]). Harness code that *compares* kernels must pin
/// them explicitly via [`transient_model_with_kernel`] instead.
pub fn transient_model(metric: SramMetric) -> SramTransientModel {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramTransientModel::new(SramTestbench::typical_45nm(), space, metric);
    if fast_lane_enabled() {
        model.with_kernel(gis_core::TransientKernel::Fast)
    } else {
        model
    }
}

/// Builds the default transient model on an explicit solver kernel — the
/// dense variant backs the kernel-equivalence assertions of
/// `bench_evaluation`.
pub fn transient_model_with_kernel(
    metric: SramMetric,
    kernel: gis_core::TransientKernel,
) -> SramTransientModel {
    transient_model(metric).with_kernel(kernel)
}

/// Builds a failure problem whose spec is `spec_factor ×` the nominal metric of
/// `model` (an upper limit).
pub fn problem_with_relative_spec<M>(model: M, nominal: f64, spec_factor: f64) -> FailureProblem
where
    M: PerformanceModel + 'static,
{
    FailureProblem::from_model(model, Spec::UpperLimit(nominal * spec_factor))
}

/// Prints a comparison table in the fixed-width format used by every
/// table-generating binary. The rows come straight from a
/// [`gis_core::YieldAnalysis`] report (or [`ComparisonRow::from_result`]).
pub fn print_comparison_table(title: &str, rows: &[ComparisonRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<24} {:>12} {:>8} {:>10} {:>12} {:>12} {:>10} {:>8} {:>10}",
        "method",
        "P_fail",
        "sigma",
        "rel90[%]",
        "#sims",
        "speedup",
        "converged",
        "threads",
        "wall[s]"
    );
    for row in rows {
        println!(
            "{:<24} {:>12.4e} {:>8.3} {:>10.1} {:>12} {:>12.1} {:>10} {:>8} {:>10.3}",
            row.method,
            row.failure_probability,
            row.sigma_level,
            row.relative_confidence_90 * 100.0,
            row.evaluations,
            row.speedup_vs_monte_carlo,
            row.converged,
            row.threads,
            row.wall_time_seconds
        );
    }
}

/// Prints every problem of a [`gis_core::YieldAnalysis`] report as a
/// comparison table.
pub fn print_analysis_report(report: &AnalysisReport) {
    for problem in &report.problems {
        print_comparison_table(&problem.problem, &problem.rows());
    }
}

/// Resolves the workspace root (the directory holding the top-level
/// `Cargo.toml` and `ROADMAP.md`), whether a binary is run from the root or
/// from inside the crate. The `BENCH_*.json` harness artifacts anchor here.
pub fn workspace_root() -> PathBuf {
    let candidates = [
        Path::new(".").to_path_buf(),
        Path::new("../..").to_path_buf(),
    ];
    for dir in candidates {
        if dir.join("Cargo.toml").exists() && dir.join("ROADMAP.md").exists() {
            return dir;
        }
    }
    Path::new(".").to_path_buf()
}

/// Resolves the results directory (creating it if needed), anchored at the
/// workspace root regardless of the invoking cwd. The previous cwd-relative
/// probing mis-resolved when `results/` did not exist yet: the first
/// candidate's parent is the empty path (which never `exists()`), so the
/// `../../` fallback fired even from the workspace root and escaped the
/// repository.
pub fn results_dir() -> PathBuf {
    // This crate lives at <workspace>/crates/bench, so the workspace root is
    // two levels above the compile-time manifest dir.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let dir = if root.join("Cargo.toml").exists() {
        root.join(RESULTS_DIR)
    } else {
        // The binary was moved away from its build tree: fall back to cwd.
        Path::new(RESULTS_DIR).to_path_buf()
    };
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Serializes `data` as pretty JSON into `<dir>/<name>.json`. Failures to
/// write are reported on stderr but never abort an experiment. This is the
/// primitive behind [`write_json_artifact`]; tests use it with a temporary
/// directory so unit-test artifacts never land in the tracked `results/`
/// tree.
pub fn write_json_artifact_in<T: Serialize>(dir: &Path, name: &str, data: &T) {
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(data) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Serializes `data` as pretty JSON into `results/<name>.json`. Failures to
/// write are reported on stderr but never abort an experiment.
pub fn write_json_artifact<T: Serialize>(name: &str, data: &T) {
    write_json_artifact_in(&results_dir(), name, data);
}

/// Prints a CSV block (header + rows) to stdout, prefixed by a `# <name>`
/// marker so figure data can be extracted from captured logs.
pub fn print_csv(name: &str, header: &str, rows: &[String]) {
    println!("\n# {name}");
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_core::{Estimator, GisConfig, GradientImportanceSampling, ImportanceSamplingConfig};
    use gis_stats::RngStream;

    /// A per-test scratch directory under the system temp dir, cleaned up on
    /// drop, so unit tests never write into the repository's `results/`.
    struct TempArtifactDir(PathBuf);

    impl TempArtifactDir {
        fn new(test: &str) -> Self {
            let dir = std::env::temp_dir()
                .join("gis_bench_unit_tests")
                .join(format!("{test}_{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("temp dir is creatable");
            TempArtifactDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempArtifactDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn surrogate_models_have_sane_nominals() {
        let read = surrogate_read_model();
        let write = surrogate_write_model();
        assert!(read.nominal_metric() > 1e-11 && read.nominal_metric() < 1e-8);
        assert!(write.nominal_metric() > 1e-11 && write.nominal_metric() < 1e-8);
    }

    #[test]
    fn comparison_row_from_gis_run() {
        let read = surrogate_read_model();
        let nominal = read.nominal_metric();
        let problem = problem_with_relative_spec(read, nominal, 2.0);
        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 5_000,
                ..ImportanceSamplingConfig::default()
            },
            ..GisConfig::default()
        });
        let outcome = gis.estimate(&problem, &mut RngStream::from_seed(MASTER_SEED));
        let row = ComparisonRow::from_result(&outcome.result);
        assert_eq!(row.method, "gradient-is");
        assert!(row.evaluations > 0);
        print_comparison_table("smoke", &[row]);
    }

    #[test]
    fn analysis_report_prints_and_serializes() {
        let read = surrogate_read_model();
        let nominal = read.nominal_metric();
        let report = gis_core::YieldAnalysis::new()
            .master_seed(MASTER_SEED)
            .convergence_policy(gis_core::ConvergencePolicy::with_budget(2_000))
            .problem(
                "surrogate-read",
                problem_with_relative_spec(read, nominal, 2.0),
            )
            .estimator(Box::new(GradientImportanceSampling::new(
                GisConfig::default(),
            )))
            .run();
        print_analysis_report(&report);
        let scratch = TempArtifactDir::new("report");
        write_json_artifact_in(scratch.path(), "unit_test_report", &report);
        assert!(scratch.path().join("unit_test_report.json").exists());
    }

    #[test]
    fn artifacts_are_written() {
        #[derive(Serialize)]
        struct Dummy {
            value: u32,
        }
        let scratch = TempArtifactDir::new("artifact");
        write_json_artifact_in(scratch.path(), "unit_test_artifact", &Dummy { value: 42 });
        let path = scratch.path().join("unit_test_artifact.json");
        assert!(path.exists());
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains("42"));
        print_csv("unit", "a,b", &["1,2".to_string()]);
    }
}
