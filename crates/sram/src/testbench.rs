//! Transient testbenches extracting the dynamic characteristics of the 6T cell.
//!
//! Three characteristics are extracted, matching the standard set evaluated in
//! the high-sigma SRAM literature:
//!
//! * **Read access time** — wordline 50% rise to a `ΔV_sense` differential on
//!   the bitlines, with the cell storing a `0` on the accessed side.
//! * **Write delay** — wordline 50% rise to the storage node crossing half the
//!   supply while writing the opposite value into the cell.
//! * **Read disturb margin** — how far the low storage node is pulled up during
//!   a read; a dynamic-stability metric (the cell flips when it exceeds the
//!   trip point).
//!
//! A sample whose transient never reaches the measured event within the
//! simulation window is *censored*: the metric is reported as the window length
//! (read/write) or the supply voltage (disturb), which is always beyond any
//! sensible specification and therefore counts as a failure without biasing
//! non-failing statistics.
//!
//! # Batched evaluation
//!
//! Statistical extraction runs these transients millions of times with only
//! the six threshold voltages changing between samples. [`ReadSession`] and
//! [`WriteSession`] hoist everything else — netlist construction, node lookup,
//! initial conditions, integration config — out of the per-sample loop: a
//! session is built once, and each [`ReadSession::run`] injects the sample's
//! ΔV_T values into the prebuilt netlist before solving the transient. The
//! scalar [`SramTestbench::read`]/[`SramTestbench::write`] entry points are
//! thin wrappers over a fresh session, so both paths produce bit-identical
//! metrics.
//!
//! On the [`TransientKernel::Lockstep`] and [`TransientKernel::Fast`] kernels,
//! [`ReadSession::run_batch`]/[`WriteSession::run_batch`] additionally advance
//! up to [`LANE_GROUP`] samples through one shared elimination program per
//! solver call; the lockstep kernel's per-lane arithmetic is bit-identical to
//! the scalar sparse kernel, so batching changes throughput, never metrics.

use crate::cell::{build_6t_cell, CellNodes, CellTransistor, SramCellConfig};
use crate::error::SramError;
use gis_circuit::{
    transient_analysis_dense, transient_analysis_lockstep, transient_analysis_with, Circuit,
    CircuitError, CrossingDirection, Device, LockstepWorkspace, MosfetParams, SimulationWorkspace,
    SourceWaveform, TransientConfig, TransientKernel, TransientResult, MAX_LANES,
};
use serde::{Deserialize, Serialize};

/// Number of samples a session advances together per lockstep solver call on
/// the bit-identical [`TransientKernel::Lockstep`] kernel.
///
/// Four lanes already amortize the recorded-program walk and expose enough
/// independent divisions to hide their latency, while keeping each lane-major
/// working row within a cache line; the exact kernel's per-lane libm
/// transcendentals don't vectorize, so throughput on the benchmark cell
/// flattens beyond four. Batches that are not a multiple of this size simply
/// run a ragged final group.
pub const LANE_GROUP: usize = 4;

/// Lane-group width of the opt-in [`TransientKernel::Fast`] kernel.
///
/// The fast lane's branch-free compact model evaluates all lanes in one
/// straight-line pass, so wider groups keep vectorizing: eight lanes map a
/// lane-major row onto one 512-bit vector (or two 256-bit halves) and
/// measurably outrun four on AVX-capable hosts.
pub const FAST_LANE_GROUP: usize = 8;

const _: () = assert!(LANE_GROUP <= MAX_LANES, "lane group exceeds solver lanes");
const _: () = assert!(
    FAST_LANE_GROUP <= MAX_LANES,
    "lane group exceeds solver lanes"
);

/// The lane-group width a session uses for `kernel` (see [`LANE_GROUP`] and
/// [`FAST_LANE_GROUP`]).
fn lane_group_for(kernel: TransientKernel) -> usize {
    match kernel {
        TransientKernel::Fast => FAST_LANE_GROUP,
        _ => LANE_GROUP,
    }
}

/// Timing and sensing parameters shared by the testbenches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbenchTiming {
    /// Delay before the wordline rises, in seconds.
    pub wordline_delay: f64,
    /// Wordline rise/fall time, in seconds.
    pub wordline_edge: f64,
    /// Wordline pulse width, in seconds.
    pub wordline_width: f64,
    /// Total simulated window, in seconds.
    pub stop_time: f64,
    /// Fixed integration step, in seconds.
    pub time_step: f64,
    /// Bitline differential (volts) that the sense amplifier needs.
    pub sense_margin: f64,
}

impl Default for TestbenchTiming {
    fn default() -> Self {
        TestbenchTiming {
            wordline_delay: 0.1e-9,
            wordline_edge: 20e-12,
            wordline_width: 2.0e-9,
            stop_time: 2.5e-9,
            time_step: 5e-12,
            sense_margin: 0.1,
        }
    }
}

impl TestbenchTiming {
    /// Validates the timing parameters.
    pub fn validate(&self) -> Result<(), SramError> {
        let all_positive = self.wordline_delay >= 0.0
            && self.wordline_edge > 0.0
            && self.wordline_width > 0.0
            && self.stop_time > 0.0
            && self.time_step > 0.0
            && self.sense_margin > 0.0;
        if !all_positive {
            return Err(SramError::InvalidConfig(
                "testbench timing values must be positive".to_string(),
            ));
        }
        if self.stop_time <= self.wordline_delay + self.wordline_edge {
            return Err(SramError::InvalidConfig(
                "simulation window ends before the wordline finishes rising".to_string(),
            ));
        }
        if self.time_step >= self.stop_time {
            return Err(SramError::InvalidConfig(
                "time step must be smaller than the simulation window".to_string(),
            ));
        }
        Ok(())
    }
}

/// Result of one read-access transient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadResult {
    /// Read access time in seconds (censored at the simulation window if the
    /// sense margin was never developed).
    pub access_time: f64,
    /// Peak voltage reached by the low storage node during the read, in volts.
    pub disturb_peak: f64,
    /// Whether the sense margin was actually developed inside the window.
    pub sensed: bool,
}

/// Result of one write transient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteResult {
    /// Write delay in seconds (censored at the simulation window when the cell
    /// did not flip).
    pub write_delay: f64,
    /// Whether the cell actually flipped inside the wordline pulse.
    pub flipped: bool,
}

/// Transient testbench for the 6T cell dynamic characteristics.
///
/// The testbench owns the cell configuration and timing; each call to
/// [`SramTestbench::read`] / [`SramTestbench::write`] builds a fresh netlist
/// with the supplied per-transistor threshold shifts and runs one transient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramTestbench {
    cell: SramCellConfig,
    timing: TestbenchTiming,
}

impl SramTestbench {
    /// Creates a testbench.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the cell or timing parameters are
    /// inconsistent.
    pub fn new(cell: SramCellConfig, timing: TestbenchTiming) -> Result<Self, SramError> {
        cell.validate().map_err(SramError::InvalidConfig)?;
        timing.validate()?;
        Ok(SramTestbench { cell, timing })
    }

    /// Testbench with the default 45 nm cell and timing.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn typical_45nm() -> Self {
        SramTestbench::new(SramCellConfig::typical_45nm(), TestbenchTiming::default())
            .expect("default configuration is valid")
    }

    /// The cell configuration.
    pub fn cell(&self) -> &SramCellConfig {
        &self.cell
    }

    /// The timing configuration.
    pub fn timing(&self) -> &TestbenchTiming {
        &self.timing
    }

    fn wordline_waveform(&self) -> SourceWaveform {
        SourceWaveform::pulse(
            0.0,
            self.cell.vdd,
            self.timing.wordline_delay,
            self.timing.wordline_edge,
            self.timing.wordline_width,
        )
    }

    /// Runs the read-access transient with the given per-transistor ΔV_T
    /// (canonical order, volts). The cell stores `Q = 0`, both bitlines start
    /// precharged to VDD, and the access time is measured from the wordline
    /// half-rise to the true bitline dropping by the sense margin.
    ///
    /// Equivalent to `self.read_session()?.run(vth_deltas)`; when evaluating
    /// many samples, build one [`ReadSession`] and reuse it.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::Circuit`] if the netlist cannot be built or the
    /// transient does not converge.
    pub fn read(&self, vth_deltas: &[f64]) -> Result<ReadResult, SramError> {
        self.read_session()?.run(vth_deltas)
    }

    /// Runs the write transient with the given per-transistor ΔV_T. The cell
    /// initially stores `Q = 1`; the bitlines drive `0` onto Q through the left
    /// pass gate. The write delay is measured from the wordline half-rise to Q
    /// falling below VDD/2.
    ///
    /// Equivalent to `self.write_session()?.run(vth_deltas)`; when evaluating
    /// many samples, build one [`WriteSession`] and reuse it.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::Circuit`] if the netlist cannot be built or the
    /// transient does not converge.
    pub fn write(&self, vth_deltas: &[f64]) -> Result<WriteResult, SramError> {
        self.write_session()?.run(vth_deltas)
    }

    /// Builds a reusable read-transient session: the netlist, initial
    /// conditions and integration config are constructed once; each
    /// [`ReadSession::run`] only injects the sample's threshold shifts.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::Circuit`] if the nominal netlist cannot be built.
    pub fn read_session(&self) -> Result<ReadSession, SramError> {
        let vdd = self.cell.vdd;
        let mut ckt = Circuit::new();
        let nodes = build_6t_cell(&mut ckt, &self.cell, &[0.0; 6])?;
        ckt.add_voltage_source(
            "V_VDD",
            nodes.vdd,
            Circuit::ground(),
            SourceWaveform::dc(vdd),
        );
        ckt.add_voltage_source(
            "V_WL",
            nodes.wordline,
            Circuit::ground(),
            self.wordline_waveform(),
        );
        // Floating, precharged bitlines.
        ckt.add_capacitor(
            "C_BL",
            nodes.bitline,
            Circuit::ground(),
            self.cell.bitline_capacitance,
        )?;
        ckt.add_capacitor(
            "C_BLB",
            nodes.bitline_bar,
            Circuit::ground(),
            self.cell.bitline_capacitance,
        )?;

        // Initial conditions: Q = 0 / QB = VDD, bitlines precharged, wordline low.
        let mut ic = vec![0.0; ckt.num_nodes()];
        ic[nodes.vdd] = vdd;
        ic[nodes.wordline] = 0.0;
        ic[nodes.bitline] = vdd;
        ic[nodes.bitline_bar] = vdd;
        ic[nodes.q] = 0.0;
        ic[nodes.q_bar] = vdd;

        let config = TransientConfig::new(self.timing.stop_time, self.timing.time_step)
            .with_initial_conditions(ic);
        let cell = CellParameterInjector::new(&ckt, &self.cell);
        Ok(ReadSession {
            circuit: ckt,
            nodes,
            cell,
            config,
            vdd,
            sense_level: vdd - self.timing.sense_margin,
            kernel: TransientKernel::Sparse,
            workspace: SimulationWorkspace::new(),
            lockstep: LockstepWorkspace::new(),
            lane_circuits: Vec::new(),
        })
    }

    /// Builds a reusable write-transient session (see
    /// [`SramTestbench::read_session`]).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::Circuit`] if the nominal netlist cannot be built.
    pub fn write_session(&self) -> Result<WriteSession, SramError> {
        let vdd = self.cell.vdd;
        let mut ckt = Circuit::new();
        let nodes = build_6t_cell(&mut ckt, &self.cell, &[0.0; 6])?;
        ckt.add_voltage_source(
            "V_VDD",
            nodes.vdd,
            Circuit::ground(),
            SourceWaveform::dc(vdd),
        );
        ckt.add_voltage_source(
            "V_WL",
            nodes.wordline,
            Circuit::ground(),
            self.wordline_waveform(),
        );
        // Write drivers hold the bitlines at the target data.
        ckt.add_voltage_source(
            "V_BL",
            nodes.bitline,
            Circuit::ground(),
            SourceWaveform::dc(0.0),
        );
        ckt.add_voltage_source(
            "V_BLB",
            nodes.bitline_bar,
            Circuit::ground(),
            SourceWaveform::dc(vdd),
        );

        // Initial conditions: Q = VDD / QB = 0, wordline low.
        let mut ic = vec![0.0; ckt.num_nodes()];
        ic[nodes.vdd] = vdd;
        ic[nodes.wordline] = 0.0;
        ic[nodes.bitline] = 0.0;
        ic[nodes.bitline_bar] = vdd;
        ic[nodes.q] = vdd;
        ic[nodes.q_bar] = 0.0;

        let config = TransientConfig::new(self.timing.stop_time, self.timing.time_step)
            .with_initial_conditions(ic);
        let cell = CellParameterInjector::new(&ckt, &self.cell);
        Ok(WriteSession {
            circuit: ckt,
            nodes,
            cell,
            config,
            vdd,
            kernel: TransientKernel::Sparse,
            workspace: SimulationWorkspace::new(),
            lockstep: LockstepWorkspace::new(),
            lane_circuits: Vec::new(),
        })
    }
}

/// Maps the six cell transistors of a prebuilt netlist to their device slots
/// so per-sample threshold shifts can be injected without rebuilding anything.
#[derive(Debug, Clone)]
struct CellParameterInjector {
    /// Device index of each cell transistor, canonical order.
    device_indices: [usize; 6],
    /// Nominal (unvaried) model card of each cell transistor, canonical order.
    nominal_params: [MosfetParams; 6],
}

impl CellParameterInjector {
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn new(circuit: &Circuit, cell: &SramCellConfig) -> Self {
        let mut device_indices = [0usize; 6];
        let mut nominal_params = [cell.pass_gate; 6];
        for transistor in CellTransistor::all() {
            let index = circuit
                .devices()
                .iter()
                .position(|d| d.name() == transistor.instance_name())
                .expect("the 6T cell instantiates every cell transistor");
            device_indices[transistor.index()] = index;
            nominal_params[transistor.index()] = cell.nominal_params(transistor);
        }
        CellParameterInjector {
            device_indices,
            nominal_params,
        }
    }

    /// Writes `nominal + delta` model cards into the netlist, validating each
    /// shifted card exactly as [`build_6t_cell`] would.
    fn inject(&self, circuit: &mut Circuit, vth_deltas: &[f64]) -> Result<(), SramError> {
        if vth_deltas.len() != 6 {
            return Err(SramError::Circuit(CircuitError::InvalidDevice {
                device: "6T cell".to_string(),
                reason: format!("expected 6 threshold deltas, got {}", vth_deltas.len()),
            }));
        }
        for transistor in CellTransistor::all() {
            let i = transistor.index();
            let shifted = self.nominal_params[i].with_vth_shift(vth_deltas[i]);
            shifted
                .validate()
                .map_err(|reason| CircuitError::InvalidDevice {
                    device: transistor.instance_name().to_string(),
                    reason,
                })?;
            match &mut circuit.devices_mut()[self.device_indices[i]] {
                Device::Mosfet { params, .. } => *params = shifted,
                other => unreachable!("device {} is a MOSFET", other.name()),
            }
        }
        Ok(())
    }
}

/// A reusable read-access transient with the netlist built once.
///
/// Produced by [`SramTestbench::read_session`]. Each [`ReadSession::run`] is
/// bit-identical to [`SramTestbench::read`] for the same ΔV_T vector. The
/// session owns a [`SimulationWorkspace`], so the sparse kernel's symbolic
/// plan and numeric buffers are shared by every sample of a batch; metric
/// extraction measures zero-copy [`gis_circuit::WaveformView`]s.
#[derive(Debug, Clone)]
pub struct ReadSession {
    circuit: Circuit,
    nodes: CellNodes,
    cell: CellParameterInjector,
    config: TransientConfig,
    vdd: f64,
    sense_level: f64,
    kernel: TransientKernel,
    workspace: SimulationWorkspace,
    lockstep: LockstepWorkspace,
    lane_circuits: Vec<Circuit>,
}

impl ReadSession {
    /// Selects the solver kernel (default [`TransientKernel::Sparse`]). The
    /// dense kernel exists for end-to-end verification; results are
    /// bit-identical either way.
    pub fn with_kernel(mut self, kernel: TransientKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The kernel this session solves on.
    pub fn kernel(&self) -> TransientKernel {
        self.kernel
    }

    /// Runs one read transient with the given per-transistor ΔV_T (canonical
    /// order, volts).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::Circuit`] for an invalid shift vector or a
    /// non-converging transient.
    pub fn run(&mut self, vth_deltas: &[f64]) -> Result<ReadResult, SramError> {
        self.cell.inject(&mut self.circuit, vth_deltas)?;
        let result = run_transient(
            &self.circuit,
            &self.config,
            self.kernel,
            &mut self.workspace,
            &mut self.lockstep,
        )?;
        self.measure(&result)
    }

    /// Runs one read transient per ΔV_T sample.
    ///
    /// On the [`TransientKernel::Lockstep`] and [`TransientKernel::Fast`]
    /// kernels, up to [`LANE_GROUP`] (respectively [`FAST_LANE_GROUP`])
    /// samples advance together through one shared elimination program per
    /// solver call; the per-lane arithmetic is bit-identical to running each
    /// sample through [`ReadSession::run`] on the lockstep kernel, and — for
    /// `Lockstep` — bit-identical to the scalar sparse kernel. A singleton
    /// group (a batch of one, or a ragged tail of one) is solved on the
    /// scalar sparse kernel directly: identical bits for `Lockstep`, exact
    /// (rather than approximate) metrics for `Fast`. Other kernels evaluate
    /// the samples sequentially. Each sample's result slot is independent: a
    /// rejected shift vector or a non-converging lane yields an `Err` in its
    /// own slot without disturbing its neighbours.
    pub fn run_batch(&mut self, samples: &[&[f64]]) -> Vec<Result<ReadResult, SramError>> {
        if !matches!(
            self.kernel,
            TransientKernel::Lockstep | TransientKernel::Fast
        ) {
            return samples.iter().map(|deltas| self.run(deltas)).collect();
        }
        let fast = matches!(self.kernel, TransientKernel::Fast);
        let mut out: Vec<Result<ReadResult, SramError>> = samples
            .iter()
            .map(|_| Err(SramError::InvalidConfig("sample not evaluated".into())))
            .collect();
        let width = lane_group_for(self.kernel);
        for (chunk_index, group) in samples.chunks(width).enumerate() {
            let offset = chunk_index * width;
            if group.len() == 1 {
                // A singleton group (batch of one, or a ragged tail of one)
                // gains nothing from the lane machinery and would pay its
                // per-lane overhead — and, on the fast lane, the approximate
                // model's scalar cost — for no vector width. Solve it on the
                // scalar sparse kernel: bit-identical for `Lockstep`, and for
                // `Fast` an exact singleton only tightens the documented
                // metric tolerance.
                out[offset] = self.run_single_sparse(group[0]);
                continue;
            }
            let lane_of = inject_group(
                &self.cell,
                &self.circuit,
                &mut self.lane_circuits,
                group,
                offset,
                &mut out,
            );
            if lane_of.is_empty() {
                continue;
            }
            let circuits: Vec<&Circuit> = self.lane_circuits[..lane_of.len()].iter().collect();
            match transient_analysis_lockstep(&circuits, &self.config, &mut self.lockstep, fast) {
                Err(e) => {
                    for &i in &lane_of {
                        out[i] = Err(SramError::Circuit(e.clone()));
                    }
                }
                Ok(lane_results) => {
                    for (lane, result) in lane_results.into_iter().enumerate() {
                        out[lane_of[lane]] = result
                            .map_err(SramError::Circuit)
                            .and_then(|r| self.measure(&r));
                    }
                }
            }
        }
        out
    }

    /// One sample on the scalar sparse kernel (the singleton-group fallback
    /// of [`ReadSession::run_batch`]).
    fn run_single_sparse(&mut self, vth_deltas: &[f64]) -> Result<ReadResult, SramError> {
        self.cell.inject(&mut self.circuit, vth_deltas)?;
        let result = run_transient(
            &self.circuit,
            &self.config,
            TransientKernel::Sparse,
            &mut self.workspace,
            &mut self.lockstep,
        )?;
        self.measure(&result)
    }

    /// Extracts the read metrics from a solved transient.
    fn measure(&self, result: &TransientResult) -> Result<ReadResult, SramError> {
        let wl = result.waveform_view(self.nodes.wordline)?;
        let bl = result.waveform_view(self.nodes.bitline)?;
        let q = result.waveform_view(self.nodes.q)?;

        let t_wl = wl.crossing_time(self.vdd / 2.0, CrossingDirection::Rising, 0.0)?;
        let (access_time, sensed) =
            match bl.crossing_time(self.sense_level, CrossingDirection::Falling, t_wl) {
                Ok(t_sense) => (t_sense - t_wl, true),
                Err(_) => (self.config.stop_time, false),
            };
        let disturb_peak = q.max_value();

        Ok(ReadResult {
            access_time,
            disturb_peak,
            sensed,
        })
    }
}

/// A reusable write transient with the netlist built once.
///
/// Produced by [`SramTestbench::write_session`]. Each [`WriteSession::run`] is
/// bit-identical to [`SramTestbench::write`] for the same ΔV_T vector. See
/// [`ReadSession`] for the workspace/kernel mechanics.
#[derive(Debug, Clone)]
pub struct WriteSession {
    circuit: Circuit,
    nodes: CellNodes,
    cell: CellParameterInjector,
    config: TransientConfig,
    vdd: f64,
    kernel: TransientKernel,
    workspace: SimulationWorkspace,
    lockstep: LockstepWorkspace,
    lane_circuits: Vec<Circuit>,
}

impl WriteSession {
    /// Selects the solver kernel (default [`TransientKernel::Sparse`]). The
    /// dense kernel exists for end-to-end verification; results are
    /// bit-identical either way.
    pub fn with_kernel(mut self, kernel: TransientKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The kernel this session solves on.
    pub fn kernel(&self) -> TransientKernel {
        self.kernel
    }

    /// Runs one write transient with the given per-transistor ΔV_T (canonical
    /// order, volts).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::Circuit`] for an invalid shift vector or a
    /// non-converging transient.
    pub fn run(&mut self, vth_deltas: &[f64]) -> Result<WriteResult, SramError> {
        self.cell.inject(&mut self.circuit, vth_deltas)?;
        let result = run_transient(
            &self.circuit,
            &self.config,
            self.kernel,
            &mut self.workspace,
            &mut self.lockstep,
        )?;
        self.measure(&result)
    }

    /// Runs one write transient per ΔV_T sample; see
    /// [`ReadSession::run_batch`] for the lane-group semantics.
    pub fn run_batch(&mut self, samples: &[&[f64]]) -> Vec<Result<WriteResult, SramError>> {
        if !matches!(
            self.kernel,
            TransientKernel::Lockstep | TransientKernel::Fast
        ) {
            return samples.iter().map(|deltas| self.run(deltas)).collect();
        }
        let fast = matches!(self.kernel, TransientKernel::Fast);
        let mut out: Vec<Result<WriteResult, SramError>> = samples
            .iter()
            .map(|_| Err(SramError::InvalidConfig("sample not evaluated".into())))
            .collect();
        let width = lane_group_for(self.kernel);
        for (chunk_index, group) in samples.chunks(width).enumerate() {
            let offset = chunk_index * width;
            if group.len() == 1 {
                // Singleton-group fallback; see [`ReadSession::run_batch`].
                out[offset] = self.run_single_sparse(group[0]);
                continue;
            }
            let lane_of = inject_group(
                &self.cell,
                &self.circuit,
                &mut self.lane_circuits,
                group,
                offset,
                &mut out,
            );
            if lane_of.is_empty() {
                continue;
            }
            let circuits: Vec<&Circuit> = self.lane_circuits[..lane_of.len()].iter().collect();
            match transient_analysis_lockstep(&circuits, &self.config, &mut self.lockstep, fast) {
                Err(e) => {
                    for &i in &lane_of {
                        out[i] = Err(SramError::Circuit(e.clone()));
                    }
                }
                Ok(lane_results) => {
                    for (lane, result) in lane_results.into_iter().enumerate() {
                        out[lane_of[lane]] = result
                            .map_err(SramError::Circuit)
                            .and_then(|r| self.measure(&r));
                    }
                }
            }
        }
        out
    }

    /// One sample on the scalar sparse kernel (the singleton-group fallback
    /// of [`WriteSession::run_batch`]).
    fn run_single_sparse(&mut self, vth_deltas: &[f64]) -> Result<WriteResult, SramError> {
        self.cell.inject(&mut self.circuit, vth_deltas)?;
        let result = run_transient(
            &self.circuit,
            &self.config,
            TransientKernel::Sparse,
            &mut self.workspace,
            &mut self.lockstep,
        )?;
        self.measure(&result)
    }

    /// Extracts the write metrics from a solved transient.
    fn measure(&self, result: &TransientResult) -> Result<WriteResult, SramError> {
        let wl = result.waveform_view(self.nodes.wordline)?;
        let q = result.waveform_view(self.nodes.q)?;
        let q_bar = result.waveform_view(self.nodes.q_bar)?;

        let t_wl = wl.crossing_time(self.vdd / 2.0, CrossingDirection::Rising, 0.0)?;
        // The cell has flipped when Q falls below VDD/2 *and* stays flipped
        // (QB latched high by the end of the window).
        let flipped_latched =
            q.final_value() < self.vdd / 2.0 && q_bar.final_value() > self.vdd / 2.0;
        let (write_delay, flipped) =
            match q.crossing_time(self.vdd / 2.0, CrossingDirection::Falling, t_wl) {
                Ok(t_flip) if flipped_latched => (t_flip - t_wl, true),
                _ => (self.config.stop_time, false),
            };

        Ok(WriteResult {
            write_delay,
            flipped,
        })
    }
}

/// Injects each sample of `group` into its own prebuilt lane netlist,
/// compacting to the lanes whose shift vector was accepted. Rejected samples
/// get their error written straight into `out[offset + j]`; the returned
/// vector maps lane index → sample index for the lanes that will run. Lane
/// netlists are cloned from `nominal` on first use and reused afterwards, so
/// a warm session allocates nothing here.
fn inject_group<R>(
    cell: &CellParameterInjector,
    nominal: &Circuit,
    lane_circuits: &mut Vec<Circuit>,
    group: &[&[f64]],
    offset: usize,
    out: &mut [Result<R, SramError>],
) -> Vec<usize> {
    let mut lane_of = Vec::with_capacity(group.len());
    for (j, deltas) in group.iter().enumerate() {
        let lane = lane_of.len();
        if lane_circuits.len() == lane {
            lane_circuits.push(nominal.clone());
        }
        match cell.inject(&mut lane_circuits[lane], deltas) {
            Ok(()) => lane_of.push(offset + j),
            Err(e) => out[offset + j] = Err(e),
        }
    }
    lane_of
}

/// Dispatches one transient to the selected kernel. The lockstep kernels run
/// single-lane here — the lane-group batching lives in
/// [`ReadSession::run_batch`]/[`WriteSession::run_batch`] — so every kernel
/// is usable through the scalar `run` entry points.
#[allow(clippy::expect_used)] // invariant stated in the expect message
fn run_transient(
    circuit: &Circuit,
    config: &TransientConfig,
    kernel: TransientKernel,
    workspace: &mut SimulationWorkspace,
    lockstep: &mut LockstepWorkspace,
) -> Result<TransientResult, CircuitError> {
    match kernel {
        TransientKernel::Sparse => transient_analysis_with(circuit, config, workspace),
        TransientKernel::Dense => transient_analysis_dense(circuit, config),
        TransientKernel::Lockstep | TransientKernel::Fast => {
            let fast = matches!(kernel, TransientKernel::Fast);
            transient_analysis_lockstep(&[circuit], config, lockstep, fast)?
                .pop()
                // A one-circuit lockstep call returns exactly one lane result.
                .expect("one lane in, one lane result out")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellTransistor;

    #[test]
    fn timing_validation() {
        assert!(TestbenchTiming::default().validate().is_ok());
        let t = TestbenchTiming {
            time_step: -1.0,
            ..TestbenchTiming::default()
        };
        assert!(t.validate().is_err());
        let t = TestbenchTiming {
            stop_time: 1e-12,
            ..TestbenchTiming::default()
        };
        assert!(t.validate().is_err());
        let t = TestbenchTiming {
            sense_margin: 0.0,
            ..TestbenchTiming::default()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn testbench_construction() {
        let tb = SramTestbench::typical_45nm();
        assert!(tb.cell().validate().is_ok());
        assert!(tb.timing().validate().is_ok());
        let mut bad_cell = SramCellConfig::typical_45nm();
        bad_cell.vdd = -1.0;
        assert!(SramTestbench::new(bad_cell, TestbenchTiming::default()).is_err());
    }

    #[test]
    fn nominal_read_is_fast_and_stable() {
        let tb = SramTestbench::typical_45nm();
        let r = tb.read(&[0.0; 6]).unwrap();
        assert!(r.sensed, "nominal cell must develop the sense margin");
        assert!(
            r.access_time > 1e-12 && r.access_time < 1.5e-9,
            "implausible nominal read access time {:e}",
            r.access_time
        );
        assert!(
            r.disturb_peak < tb.cell().vdd / 2.0,
            "nominal cell must not be disturbed during read (peak {})",
            r.disturb_peak
        );
    }

    #[test]
    fn nominal_write_flips_the_cell() {
        let tb = SramTestbench::typical_45nm();
        let w = tb.write(&[0.0; 6]).unwrap();
        assert!(w.flipped, "nominal cell must be writable");
        assert!(
            w.write_delay > 1e-12 && w.write_delay < 1.5e-9,
            "implausible nominal write delay {:e}",
            w.write_delay
        );
    }

    #[test]
    fn weak_pass_gate_slows_the_read() {
        let tb = SramTestbench::typical_45nm();
        let nominal = tb.read(&[0.0; 6]).unwrap();
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PassGateLeft.index()] = 0.15; // +0.15 V on PGL
        let slow = tb.read(&deltas).unwrap();
        assert!(
            slow.access_time > nominal.access_time * 1.3,
            "weak pass gate should slow the read: {:e} vs {:e}",
            slow.access_time,
            nominal.access_time
        );
    }

    #[test]
    fn extremely_weak_path_censors_the_read() {
        let tb = SramTestbench::typical_45nm();
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PassGateLeft.index()] = 0.6;
        deltas[CellTransistor::PullDownLeft.index()] = 0.6;
        let r = tb.read(&deltas).unwrap();
        assert!(!r.sensed);
        assert_eq!(r.access_time, tb.timing().stop_time);
    }

    #[test]
    fn strong_pull_up_contention_slows_or_blocks_the_write() {
        let tb = SramTestbench::typical_45nm();
        let nominal = tb.write(&[0.0; 6]).unwrap();
        let mut deltas = [0.0; 6];
        // Stronger PUL (negative shift) and weaker PGL fight the write.
        deltas[CellTransistor::PullUpLeft.index()] = -0.15;
        deltas[CellTransistor::PassGateLeft.index()] = 0.15;
        let contended = tb.write(&deltas).unwrap();
        assert!(
            contended.write_delay > nominal.write_delay,
            "write contention should increase delay: {:e} vs {:e}",
            contended.write_delay,
            nominal.write_delay
        );
        // An extreme imbalance makes the write fail outright.
        let mut extreme = [0.0; 6];
        extreme[CellTransistor::PullUpLeft.index()] = -0.3;
        extreme[CellTransistor::PassGateLeft.index()] = 0.45;
        let failed = tb.write(&extreme).unwrap();
        assert!(!failed.flipped, "extreme contention should block the write");
        assert_eq!(failed.write_delay, tb.timing().stop_time);
    }

    #[test]
    fn sessions_match_scalar_entry_points_bit_for_bit() {
        let tb = SramTestbench::typical_45nm();
        let mut read_session = tb.read_session().unwrap();
        let mut write_session = tb.write_session().unwrap();
        let samples: [[f64; 6]; 3] = [
            [0.0; 6],
            [0.12, -0.03, 0.05, 0.0, 0.08, -0.02],
            [-0.08, 0.15, -0.05, 0.1, 0.0, 0.07],
        ];
        for deltas in &samples {
            let scalar_read = tb.read(deltas).unwrap();
            let session_read = read_session.run(deltas).unwrap();
            assert_eq!(
                scalar_read.access_time.to_bits(),
                session_read.access_time.to_bits()
            );
            assert_eq!(
                scalar_read.disturb_peak.to_bits(),
                session_read.disturb_peak.to_bits()
            );
            assert_eq!(scalar_read.sensed, session_read.sensed);

            let scalar_write = tb.write(deltas).unwrap();
            let session_write = write_session.run(deltas).unwrap();
            assert_eq!(
                scalar_write.write_delay.to_bits(),
                session_write.write_delay.to_bits()
            );
            assert_eq!(scalar_write.flipped, session_write.flipped);
        }
        // Session reuse is stateless across samples: running the nominal cell
        // after a heavily skewed one reproduces the first result exactly.
        let nominal_again = read_session.run(&[0.0; 6]).unwrap();
        assert_eq!(
            nominal_again.access_time.to_bits(),
            tb.read(&[0.0; 6]).unwrap().access_time.to_bits()
        );
    }

    #[test]
    fn sparse_and_dense_kernels_agree_bit_for_bit() {
        let tb = SramTestbench::typical_45nm();
        let mut sparse_read = tb.read_session().unwrap();
        let mut dense_read = tb
            .read_session()
            .unwrap()
            .with_kernel(TransientKernel::Dense);
        let mut sparse_write = tb.write_session().unwrap();
        let mut dense_write = tb
            .write_session()
            .unwrap()
            .with_kernel(TransientKernel::Dense);
        assert_eq!(sparse_read.kernel(), TransientKernel::Sparse);
        assert_eq!(dense_read.kernel(), TransientKernel::Dense);
        let samples: [[f64; 6]; 3] = [
            [0.0; 6],
            [0.12, -0.03, 0.05, 0.0, 0.08, -0.02],
            [-0.08, 0.15, -0.05, 0.1, 0.0, 0.07],
        ];
        for deltas in &samples {
            let s = sparse_read.run(deltas).unwrap();
            let d = dense_read.run(deltas).unwrap();
            assert_eq!(s.access_time.to_bits(), d.access_time.to_bits());
            assert_eq!(s.disturb_peak.to_bits(), d.disturb_peak.to_bits());
            assert_eq!(s.sensed, d.sensed);
            let sw = sparse_write.run(deltas).unwrap();
            let dw = dense_write.run(deltas).unwrap();
            assert_eq!(sw.write_delay.to_bits(), dw.write_delay.to_bits());
            assert_eq!(sw.flipped, dw.flipped);
        }
    }

    #[test]
    fn lockstep_batches_match_scalar_sparse_bit_for_bit() {
        let tb = SramTestbench::typical_45nm();
        let samples: [[f64; 6]; 5] = [
            [0.0; 6],
            [0.12, -0.03, 0.05, 0.0, 0.08, -0.02],
            [-0.08, 0.15, -0.05, 0.1, 0.0, 0.07],
            [0.3, 0.0, -0.1, 0.05, -0.06, 0.12],
            [0.02, 0.02, 0.02, 0.02, 0.02, 0.02], // ragged final group of one
        ];
        let refs: Vec<&[f64]> = samples.iter().map(|s| &s[..]).collect();

        let mut lockstep_read = tb
            .read_session()
            .unwrap()
            .with_kernel(TransientKernel::Lockstep);
        let batch = lockstep_read.run_batch(&refs);
        assert_eq!(batch.len(), samples.len());
        for (deltas, result) in samples.iter().zip(&batch) {
            let scalar = tb.read(deltas).unwrap();
            let lane = result.as_ref().unwrap();
            assert_eq!(scalar.access_time.to_bits(), lane.access_time.to_bits());
            assert_eq!(scalar.disturb_peak.to_bits(), lane.disturb_peak.to_bits());
            assert_eq!(scalar.sensed, lane.sensed);
        }
        // A second batch reuses the warm workspace and lane netlists.
        let again = lockstep_read.run_batch(&refs);
        for (first, second) in batch.iter().zip(&again) {
            assert_eq!(first.as_ref().unwrap(), second.as_ref().unwrap());
        }

        let mut lockstep_write = tb
            .write_session()
            .unwrap()
            .with_kernel(TransientKernel::Lockstep);
        for (deltas, result) in samples.iter().zip(lockstep_write.run_batch(&refs)) {
            let scalar = tb.write(deltas).unwrap();
            let lane = result.unwrap();
            assert_eq!(scalar.write_delay.to_bits(), lane.write_delay.to_bits());
            assert_eq!(scalar.flipped, lane.flipped);
        }
    }

    #[test]
    fn lockstep_single_lane_run_matches_scalar_sparse() {
        let tb = SramTestbench::typical_45nm();
        let mut session = tb
            .read_session()
            .unwrap()
            .with_kernel(TransientKernel::Lockstep);
        let deltas = [0.12, -0.03, 0.05, 0.0, 0.08, -0.02];
        let scalar = tb.read(&deltas).unwrap();
        let lane = session.run(&deltas).unwrap();
        assert_eq!(scalar.access_time.to_bits(), lane.access_time.to_bits());
        assert_eq!(scalar.disturb_peak.to_bits(), lane.disturb_peak.to_bits());
    }

    #[test]
    fn batch_isolates_rejected_samples() {
        let tb = SramTestbench::typical_45nm();
        let mut session = tb
            .read_session()
            .unwrap()
            .with_kernel(TransientKernel::Lockstep);
        let good = [0.0; 6];
        let bad = [f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0];
        let refs: Vec<&[f64]> = vec![&good, &bad, &good];
        let batch = session.run_batch(&refs);
        assert!(batch[0].is_ok());
        assert!(batch[1].is_err());
        assert!(batch[2].is_ok());
        let nominal = tb.read(&good).unwrap();
        for slot in [&batch[0], &batch[2]] {
            assert_eq!(
                slot.as_ref().unwrap().access_time.to_bits(),
                nominal.access_time.to_bits()
            );
        }
    }

    #[test]
    fn fast_kernel_batches_track_the_exact_metrics() {
        let tb = SramTestbench::typical_45nm();
        let samples: [[f64; 6]; 2] = [[0.0; 6], [0.12, -0.03, 0.05, 0.0, 0.08, -0.02]];
        let refs: Vec<&[f64]> = samples.iter().map(|s| &s[..]).collect();
        let mut fast = tb
            .read_session()
            .unwrap()
            .with_kernel(TransientKernel::Fast);
        for (deltas, result) in samples.iter().zip(fast.run_batch(&refs)) {
            let exact = tb.read(deltas).unwrap();
            let approx = result.unwrap();
            let rel = (approx.access_time - exact.access_time).abs() / exact.access_time;
            assert!(
                rel < 1e-3,
                "fast access time deviates by {rel:e} from the exact kernel"
            );
            assert_eq!(exact.sensed, approx.sensed);
        }
    }

    #[test]
    fn sessions_reject_bad_delta_vectors() {
        let tb = SramTestbench::typical_45nm();
        let mut session = tb.read_session().unwrap();
        assert!(session.run(&[0.0; 5]).is_err());
        assert!(session.run(&[f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0]).is_err());
        // The session stays usable after a rejected sample.
        assert!(session.run(&[0.0; 6]).is_ok());
    }

    #[test]
    fn read_metric_is_monotone_in_pass_gate_vth() {
        let tb = SramTestbench::typical_45nm();
        let mut previous = 0.0;
        for (i, shift) in [-0.05, 0.0, 0.05, 0.10].iter().enumerate() {
            let mut deltas = [0.0; 6];
            deltas[CellTransistor::PassGateLeft.index()] = *shift;
            let r = tb.read(&deltas).unwrap();
            if i > 0 {
                assert!(
                    r.access_time >= previous,
                    "read access time should increase with PGL Vth"
                );
            }
            previous = r.access_time;
        }
    }
}
