//! 6T SRAM bitcell testbenches and dynamic characteristic extraction.
//!
//! This crate sits between the circuit simulator ([`gis_circuit`]) and the
//! statistical extraction layer (`gis-core`). It provides:
//!
//! * [`SramCellConfig`] / [`build_6t_cell`] — a parametric 6T bitcell with
//!   per-transistor threshold-voltage shifts (the variation hook),
//! * [`SramTestbench`] — transient read, write and read-disturb testbenches
//!   that extract the paper's dynamic characteristics (read access time, write
//!   delay, disturb margin) from full circuit simulation, and
//! * [`SramSurrogate`] — a smooth analytical stand-in with the same failure
//!   mechanisms, used when an experiment needs millions of evaluations.
//!
//! # Example
//!
//! ```
//! use gis_sram::SramTestbench;
//!
//! # fn main() -> Result<(), gis_sram::SramError> {
//! let tb = SramTestbench::typical_45nm();
//! let nominal = tb.read(&[0.0; 6])?;
//! assert!(nominal.sensed);
//!
//! // Weaken the left pass gate by 150 mV: the read slows down.
//! let mut deltas = [0.0; 6];
//! deltas[0] = 0.15;
//! let slow = tb.read(&deltas)?;
//! assert!(slow.access_time > nominal.access_time);
//! # Ok(())
//! # }
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod cell;
mod error;
pub mod static_analysis;
pub mod surrogate;
pub mod testbench;

pub use cell::{build_6t_cell, CellNodes, CellTransistor, SramCellConfig};
pub use error::SramError;
pub use static_analysis::{StaticAnalysis, StaticCondition};
pub use surrogate::SramSurrogate;
pub use testbench::{
    ReadResult, ReadSession, SramTestbench, TestbenchTiming, WriteResult, WriteSession,
    FAST_LANE_GROUP, LANE_GROUP,
};
// The kernel selector travels with the sessions so downstream layers can
// request the dense reference kernel for verification runs.
pub use gis_circuit::TransientKernel;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SramError>;
