//! Static (DC) characteristics of the 6T cell: hold and read static noise
//! margins and the data-retention supply voltage.
//!
//! The dynamic characteristics (read access time, write delay) are the paper's
//! focus, but a complete extraction flow also reports the static margins: they
//! share the same variation space and the same estimators, and the read
//! static-noise-margin failure is the classic "cell flips during read" event
//! that the dynamic disturb metric approximates.
//!
//! The margins are computed with the standard butterfly-curve construction: the
//! voltage-transfer curves of the two half-cells (each cross-coupled inverter,
//! with the pass gate loading applied for the read condition) are plotted
//! against each other and the static noise margin is the side of the largest
//! square that fits inside the smaller lobe.

use crate::cell::{CellTransistor, SramCellConfig};
use crate::error::SramError;
use gis_circuit::{dc_sweep, Circuit, MosfetParams, SourceWaveform, GROUND};

/// Which static condition the margin is evaluated under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticCondition {
    /// Wordline low, bitlines disconnected (retention / hold).
    Hold,
    /// Wordline high, bitlines held at VDD (worst-case read disturbance).
    Read,
}

/// Number of points used for each voltage-transfer-curve sweep.
const VTC_POINTS: usize = 81;

/// Computes the voltage transfer curve of one half-cell inverter.
///
/// `pull_up`/`pull_down` are the model cards of this half's devices (already
/// including any ΔV_T), and `pass_gate` is the access device loading the output
/// node when `condition` is [`StaticCondition::Read`].
fn half_cell_vtc(
    config: &SramCellConfig,
    pull_up: MosfetParams,
    pull_down: MosfetParams,
    pass_gate: MosfetParams,
    condition: StaticCondition,
) -> Result<(Vec<f64>, Vec<f64>), SramError> {
    let vdd = config.vdd;
    let mut ckt = Circuit::new();
    let vdd_node = ckt.node("vdd");
    let input = ckt.node("in");
    let output = ckt.node("out");
    ckt.add_voltage_source("V_VDD", vdd_node, GROUND, SourceWaveform::dc(vdd));
    ckt.add_voltage_source("V_IN", input, GROUND, SourceWaveform::dc(0.0));
    ckt.add_mosfet("M_PU", output, input, vdd_node, vdd_node, pull_up)?;
    ckt.add_mosfet("M_PD", output, input, GROUND, GROUND, pull_down)?;
    if condition == StaticCondition::Read {
        // Worst-case read: wordline and bitline both at VDD, so the pass gate
        // pulls the output node up against the pull-down device.
        let wordline = ckt.node("wl");
        let bitline = ckt.node("bl");
        ckt.add_voltage_source("V_WL", wordline, GROUND, SourceWaveform::dc(vdd));
        ckt.add_voltage_source("V_BL", bitline, GROUND, SourceWaveform::dc(vdd));
        ckt.add_mosfet("M_PG", bitline, wordline, output, GROUND, pass_gate)?;
    }

    let inputs: Vec<f64> = (0..VTC_POINTS)
        .map(|i| vdd * i as f64 / (VTC_POINTS - 1) as f64)
        .collect();
    let initial = vec![0.0, vdd, 0.0, vdd, vdd, vdd];
    let sweep = dc_sweep(&ckt, "V_IN", &inputs, Some(&initial))?;
    let outputs = sweep.node_voltage_samples(output)?;
    Ok((inputs, outputs))
}

/// Side of the largest square that fits between a voltage transfer curve
/// `y = f1(x)` and the mirrored curve `x = f2(y)` — the standard graphical
/// static-noise-margin construction, evaluated in the 45°-rotated frame.
fn largest_square_side(curve1: (&[f64], &[f64]), curve2: (&[f64], &[f64])) -> f64 {
    // Rotate both curves by −45°: u = (x + y)/√2, v = (y − x)/√2. In this frame
    // the separation between the first curve and the *mirrored* second curve
    // along v, maximized over u, gives √2 × (largest square side).
    let rotate = |xs: &[f64], ys: &[f64], mirror: bool| -> Vec<(f64, f64)> {
        xs.iter()
            .zip(ys.iter())
            .map(|(&x, &y)| {
                let (px, py) = if mirror { (y, x) } else { (x, y) };
                (
                    (px + py) / std::f64::consts::SQRT_2,
                    (py - px) / std::f64::consts::SQRT_2,
                )
            })
            .collect()
    };
    let c1 = rotate(curve1.0, curve1.1, false);
    let c2 = rotate(curve2.0, curve2.1, true);

    // Interpolate v(u) of a rotated curve at a query point.
    let interpolate = |points: &[(f64, f64)], u: f64| -> Option<f64> {
        let mut best: Option<f64> = None;
        for pair in points.windows(2) {
            let (u0, v0) = pair[0];
            let (u1, v1) = pair[1];
            let (lo, hi) = if u0 <= u1 { (u0, u1) } else { (u1, u0) };
            if u >= lo && u <= hi && (u1 - u0).abs() > 1e-15 {
                let v = v0 + (v1 - v0) * (u - u0) / (u1 - u0);
                best = Some(match best {
                    Some(existing) => {
                        // Multi-valued in u (steep transition region): take the
                        // branch closest to the other curve conservatively.
                        if v.abs() < existing {
                            v
                        } else {
                            existing
                        }
                    }
                    None => v,
                });
            }
        }
        best
    };

    let mut max_gap: f64 = 0.0;
    for &(u, v1) in &c1 {
        if let Some(v2) = interpolate(&c2, u) {
            // The lower lobe of the butterfly: curve 2 (mirrored) above curve 1.
            let gap = v2 - v1;
            if gap > max_gap {
                max_gap = gap;
            }
        }
    }
    max_gap / std::f64::consts::SQRT_2
}

/// Static analysis of the 6T cell.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    config: SramCellConfig,
}

impl StaticAnalysis {
    /// Creates the analysis for a given cell configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: SramCellConfig) -> Result<Self, SramError> {
        config.validate().map_err(SramError::InvalidConfig)?;
        Ok(StaticAnalysis { config })
    }

    /// Static analysis of the default 45 nm cell.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn typical_45nm() -> Self {
        StaticAnalysis::new(SramCellConfig::typical_45nm()).expect("default config is valid")
    }

    /// The cell configuration.
    pub fn cell(&self) -> &SramCellConfig {
        &self.config
    }

    fn device(&self, which: CellTransistor, vth_deltas: &[f64]) -> MosfetParams {
        self.config
            .nominal_params(which)
            .with_vth_shift(vth_deltas[which.index()])
    }

    /// Static noise margin (volts) of the cell under the given condition and
    /// per-transistor ΔV_T (canonical order). The reported value is the smaller
    /// of the two butterfly lobes, which is the margin that actually limits
    /// stability in the presence of mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] for a wrong number of deltas or
    /// [`SramError::Circuit`] if a DC sweep fails.
    pub fn static_noise_margin(
        &self,
        condition: StaticCondition,
        vth_deltas: &[f64],
    ) -> Result<f64, SramError> {
        if vth_deltas.len() != 6 {
            return Err(SramError::InvalidConfig(format!(
                "expected 6 threshold deltas, got {}",
                vth_deltas.len()
            )));
        }
        // Left half-cell: input is QB, output is Q.
        let left = half_cell_vtc(
            &self.config,
            self.device(CellTransistor::PullUpLeft, vth_deltas),
            self.device(CellTransistor::PullDownLeft, vth_deltas),
            self.device(CellTransistor::PassGateLeft, vth_deltas),
            condition,
        )?;
        // Right half-cell: input is Q, output is QB.
        let right = half_cell_vtc(
            &self.config,
            self.device(CellTransistor::PullUpRight, vth_deltas),
            self.device(CellTransistor::PullDownRight, vth_deltas),
            self.device(CellTransistor::PassGateRight, vth_deltas),
            condition,
        )?;

        let lobe_a = largest_square_side((&left.0, &left.1), (&right.0, &right.1));
        let lobe_b = largest_square_side((&right.0, &right.1), (&left.0, &left.1));
        Ok(lobe_a.min(lobe_b).max(0.0))
    }

    /// Hold (retention) static noise margin.
    ///
    /// # Errors
    ///
    /// See [`StaticAnalysis::static_noise_margin`].
    pub fn hold_snm(&self, vth_deltas: &[f64]) -> Result<f64, SramError> {
        self.static_noise_margin(StaticCondition::Hold, vth_deltas)
    }

    /// Read static noise margin (wordline high, bitlines at VDD).
    ///
    /// # Errors
    ///
    /// See [`StaticAnalysis::static_noise_margin`].
    pub fn read_snm(&self, vth_deltas: &[f64]) -> Result<f64, SramError> {
        self.static_noise_margin(StaticCondition::Read, vth_deltas)
    }

    /// Data-retention voltage: the lowest supply at which the hold SNM stays
    /// above `min_margin` volts, found by scanning the supply downward in
    /// `step` volt decrements. Returns the last supply that still meets the
    /// margin.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] for non-positive `step`/`min_margin`
    /// or circuit errors from the underlying sweeps.
    pub fn data_retention_voltage(
        &self,
        vth_deltas: &[f64],
        min_margin: f64,
        step: f64,
    ) -> Result<f64, SramError> {
        if !(step > 0.0) || !(min_margin > 0.0) {
            return Err(SramError::InvalidConfig(
                "retention search needs positive step and margin".to_string(),
            ));
        }
        let mut vdd = self.config.vdd;
        let mut last_ok = self.config.vdd;
        while vdd > 2.0 * step {
            let mut scaled = self.config.clone();
            scaled.vdd = vdd;
            let analysis = StaticAnalysis { config: scaled };
            match analysis.hold_snm(vth_deltas) {
                Ok(snm) if snm >= min_margin => {
                    last_ok = vdd;
                    vdd -= step;
                }
                // Margin lost — either measured below the requirement or the
                // supply is so low that the deep-subthreshold DC solve no
                // longer resolves a stable state, which amounts to the same
                // design conclusion.
                Ok(_) | Err(SramError::Circuit(_)) => return Ok(last_ok),
                Err(other) => return Err(other),
            }
        }
        Ok(last_ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_margins_are_physical() {
        let analysis = StaticAnalysis::typical_45nm();
        let hold = analysis.hold_snm(&[0.0; 6]).unwrap();
        let read = analysis.read_snm(&[0.0; 6]).unwrap();
        // Typical numbers for a 1.0 V, β≈1.5 cell: hold SNM a few hundred mV,
        // read SNM substantially smaller but positive.
        assert!(hold > 0.2 && hold < 0.6, "hold SNM {hold}");
        assert!(read > 0.02 && read < hold, "read SNM {read} vs hold {hold}");
    }

    #[test]
    fn mismatch_degrades_read_snm() {
        let analysis = StaticAnalysis::typical_45nm();
        let nominal = analysis.read_snm(&[0.0; 6]).unwrap();
        // Weak pull-down on the side holding '0' + strong pass gate is the
        // classic read-stability worst case.
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PullDownLeft.index()] = 0.12;
        deltas[CellTransistor::PassGateLeft.index()] = -0.12;
        let degraded = analysis.read_snm(&deltas).unwrap();
        assert!(
            degraded < nominal,
            "mismatch should reduce the read SNM ({degraded} vs {nominal})"
        );
    }

    #[test]
    fn hold_snm_insensitive_to_pass_gate() {
        let analysis = StaticAnalysis::typical_45nm();
        let nominal = analysis.hold_snm(&[0.0; 6]).unwrap();
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PassGateLeft.index()] = 0.2;
        deltas[CellTransistor::PassGateRight.index()] = 0.2;
        let shifted = analysis.hold_snm(&deltas).unwrap();
        assert!(
            (shifted - nominal).abs() / nominal < 0.05,
            "hold SNM should not depend on the (off) pass gates: {shifted} vs {nominal}"
        );
    }

    #[test]
    fn retention_voltage_is_below_nominal_supply() {
        let analysis = StaticAnalysis::typical_45nm();
        let drv = analysis
            .data_retention_voltage(&[0.0; 6], 0.05, 0.1)
            .unwrap();
        assert!((0.2..=1.0).contains(&drv), "data retention voltage {drv}");
        assert!(analysis
            .data_retention_voltage(&[0.0; 6], -1.0, 0.1)
            .is_err());
    }

    #[test]
    fn wrong_delta_count_rejected() {
        let analysis = StaticAnalysis::typical_45nm();
        assert!(analysis.hold_snm(&[0.0; 3]).is_err());
    }
}
