//! Parametric 6T SRAM bitcell and its construction inside a testbench circuit.

use gis_circuit::{Circuit, CircuitError, MosfetParams, NodeId};
use serde::{Deserialize, Serialize};

/// Index of each transistor of the 6T cell.
///
/// The order is the canonical order used by the variation space
/// (`gis_variation::sram_6t_variation_space`): pass-gate, pull-down, pull-up —
/// left column first, then the right column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellTransistor {
    /// Left pass gate (bitline BL ↔ storage node Q, gated by the wordline).
    PassGateLeft = 0,
    /// Left pull-down NMOS (Q ↔ ground, gated by QB).
    PullDownLeft = 1,
    /// Left pull-up PMOS (Q ↔ VDD, gated by QB).
    PullUpLeft = 2,
    /// Right pass gate (BLB ↔ QB).
    PassGateRight = 3,
    /// Right pull-down NMOS (QB ↔ ground, gated by Q).
    PullDownRight = 4,
    /// Right pull-up PMOS (QB ↔ VDD, gated by Q).
    PullUpRight = 5,
}

impl CellTransistor {
    /// All six transistors in canonical order.
    pub fn all() -> [CellTransistor; 6] {
        [
            CellTransistor::PassGateLeft,
            CellTransistor::PullDownLeft,
            CellTransistor::PullUpLeft,
            CellTransistor::PassGateRight,
            CellTransistor::PullDownRight,
            CellTransistor::PullUpRight,
        ]
    }

    /// Canonical index (0–5).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short instance name used in netlists.
    pub fn instance_name(self) -> &'static str {
        match self {
            CellTransistor::PassGateLeft => "M_PGL",
            CellTransistor::PullDownLeft => "M_PDL",
            CellTransistor::PullUpLeft => "M_PUL",
            CellTransistor::PassGateRight => "M_PGR",
            CellTransistor::PullDownRight => "M_PDR",
            CellTransistor::PullUpRight => "M_PUR",
        }
    }
}

/// Geometry and electrical configuration of the 6T bitcell and its bitline
/// environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramCellConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Pass-gate NMOS model card.
    pub pass_gate: MosfetParams,
    /// Pull-down NMOS model card (typically ~1.5× wider than the pass gate for
    /// read stability).
    pub pull_down: MosfetParams,
    /// Pull-up PMOS model card (typically minimum size).
    pub pull_up: MosfetParams,
    /// Bitline capacitance in farads (models the column of cells sharing the bitline).
    pub bitline_capacitance: f64,
    /// Parasitic capacitance on the internal storage nodes, in farads.
    pub node_capacitance: f64,
}

impl Default for SramCellConfig {
    fn default() -> Self {
        SramCellConfig::typical_45nm()
    }
}

impl SramCellConfig {
    /// A typical 45 nm-class low-power bitcell: β-ratio ≈ 1.5, γ-ratio ≈ 1,
    /// 10 fF bitlines.
    pub fn typical_45nm() -> Self {
        SramCellConfig {
            vdd: 1.0,
            pass_gate: MosfetParams::nmos_45nm(),
            pull_down: MosfetParams::nmos_45nm().with_width_factor(1.5),
            pull_up: MosfetParams::pmos_45nm(),
            bitline_capacitance: 10e-15,
            node_capacitance: 0.2e-15,
        }
    }

    /// Device width/length pairs in canonical transistor order, for feeding the
    /// Pelgrom mismatch model.
    pub fn widths_lengths(&self) -> [(f64, f64); 6] {
        [
            (self.pass_gate.width, self.pass_gate.length),
            (self.pull_down.width, self.pull_down.length),
            (self.pull_up.width, self.pull_up.length),
            (self.pass_gate.width, self.pass_gate.length),
            (self.pull_down.width, self.pull_down.length),
            (self.pull_up.width, self.pull_up.length),
        ]
    }

    /// Nominal (unvaried) model card of the given transistor.
    pub fn nominal_params(&self, which: CellTransistor) -> MosfetParams {
        match which {
            CellTransistor::PassGateLeft | CellTransistor::PassGateRight => self.pass_gate,
            CellTransistor::PullDownLeft | CellTransistor::PullDownRight => self.pull_down,
            CellTransistor::PullUpLeft | CellTransistor::PullUpRight => self.pull_up,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.vdd > 0.0) || !self.vdd.is_finite() {
            return Err(format!("vdd must be positive, got {}", self.vdd));
        }
        if !(self.bitline_capacitance > 0.0) || !(self.node_capacitance > 0.0) {
            return Err("capacitances must be positive".to_string());
        }
        self.pass_gate.validate()?;
        self.pull_down.validate()?;
        self.pull_up.validate()?;
        Ok(())
    }
}

/// The circuit nodes of an instantiated bitcell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellNodes {
    /// Supply node.
    pub vdd: NodeId,
    /// Wordline node.
    pub wordline: NodeId,
    /// True bitline.
    pub bitline: NodeId,
    /// Complement bitline.
    pub bitline_bar: NodeId,
    /// Internal storage node Q.
    pub q: NodeId,
    /// Internal storage node QB (complement).
    pub q_bar: NodeId,
}

/// Instantiates the 6T cell into `circuit`, applying the per-transistor
/// threshold shifts `vth_deltas` (volts, canonical order; positive = weaker
/// device for both polarities).
///
/// Returns the nodes of the instantiated cell.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidDevice`] if `vth_deltas` does not have six
/// entries or a shifted model card becomes invalid.
pub fn build_6t_cell(
    circuit: &mut Circuit,
    config: &SramCellConfig,
    vth_deltas: &[f64],
) -> Result<CellNodes, CircuitError> {
    if vth_deltas.len() != 6 {
        return Err(CircuitError::InvalidDevice {
            device: "6T cell".to_string(),
            reason: format!("expected 6 threshold deltas, got {}", vth_deltas.len()),
        });
    }
    config
        .validate()
        .map_err(|reason| CircuitError::InvalidDevice {
            device: "6T cell".to_string(),
            reason,
        })?;

    let vdd = circuit.node("vdd");
    let wordline = circuit.node("wl");
    let bitline = circuit.node("bl");
    let bitline_bar = circuit.node("blb");
    let q = circuit.node("q");
    let q_bar = circuit.node("qb");
    let gnd = Circuit::ground();

    let nodes = CellNodes {
        vdd,
        wordline,
        bitline,
        bitline_bar,
        q,
        q_bar,
    };

    let param = |which: CellTransistor| {
        config
            .nominal_params(which)
            .with_vth_shift(vth_deltas[which.index()])
    };

    // Left half: storage node Q.
    circuit.add_mosfet(
        CellTransistor::PullUpLeft.instance_name(),
        q,
        q_bar,
        vdd,
        vdd,
        param(CellTransistor::PullUpLeft),
    )?;
    circuit.add_mosfet(
        CellTransistor::PullDownLeft.instance_name(),
        q,
        q_bar,
        gnd,
        gnd,
        param(CellTransistor::PullDownLeft),
    )?;
    circuit.add_mosfet(
        CellTransistor::PassGateLeft.instance_name(),
        bitline,
        wordline,
        q,
        gnd,
        param(CellTransistor::PassGateLeft),
    )?;

    // Right half: storage node QB.
    circuit.add_mosfet(
        CellTransistor::PullUpRight.instance_name(),
        q_bar,
        q,
        vdd,
        vdd,
        param(CellTransistor::PullUpRight),
    )?;
    circuit.add_mosfet(
        CellTransistor::PullDownRight.instance_name(),
        q_bar,
        q,
        gnd,
        gnd,
        param(CellTransistor::PullDownRight),
    )?;
    circuit.add_mosfet(
        CellTransistor::PassGateRight.instance_name(),
        bitline_bar,
        wordline,
        q_bar,
        gnd,
        param(CellTransistor::PassGateRight),
    )?;

    // Storage-node parasitics.
    circuit.add_capacitor("C_Q", q, gnd, config.node_capacitance)?;
    circuit.add_capacitor("C_QB", q_bar, gnd, config.node_capacitance)?;

    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_order_matches_variation_space() {
        let all = CellTransistor::all();
        assert_eq!(all[0].index(), 0);
        assert_eq!(all[5].index(), 5);
        assert_eq!(all[0].instance_name(), "M_PGL");
        assert_eq!(all[2].instance_name(), "M_PUL");
        assert_eq!(all[5].instance_name(), "M_PUR");
    }

    #[test]
    fn default_config_is_valid() {
        let cfg = SramCellConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg, SramCellConfig::typical_45nm());
        // Pull-down is stronger than the pass gate (read stability β-ratio).
        assert!(cfg.pull_down.k_prime > cfg.pass_gate.k_prime);
        let wl = cfg.widths_lengths();
        assert_eq!(wl.len(), 6);
        assert!(wl[1].0 > wl[0].0);
    }

    #[test]
    fn config_validation_catches_errors() {
        let mut cfg = SramCellConfig::typical_45nm();
        cfg.vdd = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SramCellConfig::typical_45nm();
        cfg.bitline_capacitance = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SramCellConfig::typical_45nm();
        cfg.pull_up.k_prime = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn nominal_params_selects_the_right_card() {
        let cfg = SramCellConfig::typical_45nm();
        assert_eq!(
            cfg.nominal_params(CellTransistor::PullUpLeft).polarity,
            gis_circuit::MosfetPolarity::Pmos
        );
        assert_eq!(
            cfg.nominal_params(CellTransistor::PassGateRight).polarity,
            gis_circuit::MosfetPolarity::Nmos
        );
    }

    #[test]
    fn build_cell_creates_devices_and_nodes() {
        let mut ckt = Circuit::new();
        let cfg = SramCellConfig::typical_45nm();
        let nodes = build_6t_cell(&mut ckt, &cfg, &[0.0; 6]).unwrap();
        // 6 transistors + 2 node caps.
        assert_eq!(ckt.num_devices(), 8);
        assert!(ckt.validate().is_ok());
        assert_ne!(nodes.q, nodes.q_bar);
        assert_eq!(ckt.find_node("q"), Some(nodes.q));
        assert_eq!(ckt.find_node("wl"), Some(nodes.wordline));
    }

    #[test]
    fn build_cell_applies_vth_shift() {
        let mut ckt = Circuit::new();
        let cfg = SramCellConfig::typical_45nm();
        let mut deltas = [0.0; 6];
        deltas[CellTransistor::PassGateLeft.index()] = 0.05;
        build_6t_cell(&mut ckt, &cfg, &deltas).unwrap();
        let pgl = ckt
            .devices()
            .iter()
            .find(|d| d.name() == "M_PGL")
            .expect("PGL exists");
        if let gis_circuit::Device::Mosfet { params, .. } = pgl {
            assert!((params.vth0 - (cfg.pass_gate.vth0 + 0.05)).abs() < 1e-12);
        } else {
            panic!("M_PGL is not a MOSFET");
        }
    }

    #[test]
    fn build_cell_rejects_wrong_delta_count() {
        let mut ckt = Circuit::new();
        let cfg = SramCellConfig::typical_45nm();
        assert!(build_6t_cell(&mut ckt, &cfg, &[0.0; 5]).is_err());
    }
}
