//! Analytical surrogate model of the 6T cell dynamic characteristics.
//!
//! Large experiments (dimensionality sweeps, 10⁷-sample brute-force Monte Carlo
//! references) are infeasible on the transient simulator even though one sample
//! only costs milliseconds. The surrogate captures the *mechanism* of each
//! metric — series drive strength of the read path, write contention between
//! pass gate and pull-up — with smooth closed-form expressions, so that:
//!
//! * the metric grows without bound as the responsible devices weaken (the same
//!   heavy right tail the transient shows),
//! * the failure region lies in the same corner of the variation space as in
//!   the transient testbench (weak pass-gate/pull-down for read, weak pass-gate
//!   plus strong pull-up for write), and
//! * gradients are smooth, so the gradient-guided search behaves the same way.
//!
//! The nominal time constants can be calibrated against the transient
//! testbench ([`SramSurrogate::calibrated_to`]) so absolute values line up.

use crate::cell::{CellTransistor, SramCellConfig};
use crate::error::SramError;
use crate::testbench::SramTestbench;
use serde::{Deserialize, Serialize};

/// Smooth, strictly positive drive-strength function.
///
/// `drive(x) ≈ x^alpha` for healthy overdrive (`x ≳ 0.2`) and decays smoothly
/// to (almost) zero as the overdrive collapses, mimicking the transition of a
/// MOSFET into subthreshold.
fn drive(normalized_overdrive: f64, alpha: f64) -> f64 {
    let s = 0.05; // smoothness of the subthreshold corner
    let x = normalized_overdrive;
    let softplus = if x / s > 40.0 {
        x
    } else {
        s * (1.0 + (x / s).exp()).ln()
    };
    softplus.powf(alpha)
}

/// Closed-form surrogate of the 6T cell dynamic characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramSurrogate {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Nominal NMOS threshold (pass gate / pull down) in volts.
    pub vth_n: f64,
    /// Nominal PMOS threshold magnitude in volts.
    pub vth_p: f64,
    /// Read-path beta ratio (pull-down strength / pass-gate strength).
    pub beta_ratio: f64,
    /// Write contention ratio (pull-up strength / pass-gate strength).
    pub contention_ratio: f64,
    /// Velocity-saturation exponent of the drive current.
    pub alpha: f64,
    /// Nominal read access time in seconds.
    pub t_read_nominal: f64,
    /// Nominal write delay in seconds.
    pub t_write_nominal: f64,
    /// Ceiling applied to returned times, in seconds (keeps the metric finite).
    pub time_ceiling: f64,
}

impl Default for SramSurrogate {
    fn default() -> Self {
        SramSurrogate::typical_45nm()
    }
}

impl SramSurrogate {
    /// Surrogate matching the default 45 nm cell of [`SramCellConfig`].
    pub fn typical_45nm() -> Self {
        let cell = SramCellConfig::typical_45nm();
        SramSurrogate {
            vdd: cell.vdd,
            vth_n: cell.pass_gate.vth0,
            vth_p: cell.pull_up.vth0,
            beta_ratio: cell.pull_down.k_prime / cell.pass_gate.k_prime,
            contention_ratio: cell.pull_up.k_prime / cell.pass_gate.k_prime,
            alpha: 1.3,
            t_read_nominal: 0.25e-9,
            t_write_nominal: 0.12e-9,
            time_ceiling: 1.0e-6,
        }
    }

    /// Builds a surrogate whose nominal read and write times are calibrated to
    /// one nominal run of the transient testbench.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the testbench.
    pub fn calibrated_to(testbench: &SramTestbench) -> Result<Self, SramError> {
        let mut surrogate = SramSurrogate {
            vdd: testbench.cell().vdd,
            vth_n: testbench.cell().pass_gate.vth0,
            vth_p: testbench.cell().pull_up.vth0,
            beta_ratio: testbench.cell().pull_down.k_prime / testbench.cell().pass_gate.k_prime,
            contention_ratio: testbench.cell().pull_up.k_prime / testbench.cell().pass_gate.k_prime,
            ..SramSurrogate::typical_45nm()
        };
        let nominal_read = testbench.read(&[0.0; 6])?;
        let nominal_write = testbench.write(&[0.0; 6])?;
        if !nominal_read.sensed || !nominal_write.flipped {
            return Err(SramError::InvalidConfig(
                "nominal cell fails; cannot calibrate the surrogate".to_string(),
            ));
        }
        surrogate.t_read_nominal = nominal_read.access_time;
        surrogate.t_write_nominal = nominal_write.write_delay;
        Ok(surrogate)
    }

    /// Normalized drive strength of an NMOS with threshold shift `delta`.
    fn nmos_drive(&self, delta: f64) -> f64 {
        let nominal_overdrive = self.vdd - self.vth_n;
        drive((nominal_overdrive - delta) / nominal_overdrive, self.alpha)
    }

    /// Normalized drive strength of a PMOS with threshold shift `delta`
    /// (positive `delta` = higher |V_T| = weaker device).
    fn pmos_drive(&self, delta: f64) -> f64 {
        let nominal_overdrive = self.vdd - self.vth_p;
        drive((nominal_overdrive - delta) / nominal_overdrive, self.alpha)
    }

    /// Read access time in seconds for the given per-transistor ΔV_T (canonical
    /// order, volts).
    ///
    /// # Panics
    ///
    /// Panics if `vth_deltas.len() != 6`.
    pub fn read_access_time(&self, vth_deltas: &[f64]) -> f64 {
        assert_eq!(vth_deltas.len(), 6, "expected 6 threshold deltas");
        let d_pgl = vth_deltas[CellTransistor::PassGateLeft.index()];
        let d_pdl = vth_deltas[CellTransistor::PullDownLeft.index()];
        let d_pur = vth_deltas[CellTransistor::PullUpRight.index()];
        let d_pdr = vth_deltas[CellTransistor::PullDownRight.index()];

        // Series discharge path: pass gate and pull-down.
        let g_pg = self.nmos_drive(d_pgl);
        let g_pd = self.beta_ratio * self.nmos_drive(d_pdl);
        let series = 1.0 / (1.0 / g_pg.max(1e-12) + 1.0 / g_pd.max(1e-12));
        let g_pg0 = self.nmos_drive(0.0);
        let g_pd0 = self.beta_ratio * self.nmos_drive(0.0);
        let series0 = 1.0 / (1.0 / g_pg0 + 1.0 / g_pd0);

        // Weak coupling to the opposite inverter: a skewed trip point slightly
        // modulates how hard the internal node is held down during the read.
        let trip_skew = 1.0 + 0.08 * (d_pur - d_pdr) / self.vdd;

        (self.t_read_nominal * (series0 / series) * trip_skew).min(self.time_ceiling)
    }

    /// Peak read-disturb voltage (volts) on the low storage node during a read.
    ///
    /// # Panics
    ///
    /// Panics if `vth_deltas.len() != 6`.
    pub fn read_disturb_voltage(&self, vth_deltas: &[f64]) -> f64 {
        assert_eq!(vth_deltas.len(), 6, "expected 6 threshold deltas");
        let d_pgl = vth_deltas[CellTransistor::PassGateLeft.index()];
        let d_pdl = vth_deltas[CellTransistor::PullDownLeft.index()];
        let g_pg = self.nmos_drive(d_pgl);
        let g_pd = self.beta_ratio * self.nmos_drive(d_pdl);
        self.vdd * g_pg / (g_pg + g_pd).max(1e-12)
    }

    /// Write delay in seconds for the given per-transistor ΔV_T (canonical
    /// order, volts). Values close to [`SramSurrogate::time_ceiling`] indicate a
    /// failed (never-completing) write.
    ///
    /// # Panics
    ///
    /// Panics if `vth_deltas.len() != 6`.
    pub fn write_delay(&self, vth_deltas: &[f64]) -> f64 {
        assert_eq!(vth_deltas.len(), 6, "expected 6 threshold deltas");
        let d_pgl = vth_deltas[CellTransistor::PassGateLeft.index()];
        let d_pul = vth_deltas[CellTransistor::PullUpLeft.index()];
        let d_pdr = vth_deltas[CellTransistor::PullDownRight.index()];
        let d_pur = vth_deltas[CellTransistor::PullUpRight.index()];

        // Contention between the pass gate pulling Q down and the pull-up
        // holding it high.
        let pull = self.nmos_drive(d_pgl);
        let oppose = self.contention_ratio * self.pmos_drive(d_pul);
        let net = pull - oppose;
        let pull0 = self.nmos_drive(0.0);
        let oppose0 = self.contention_ratio * self.pmos_drive(0.0);
        let net0 = pull0 - oppose0;

        // Smooth barrier: as the net pull-down strength collapses the delay
        // diverges (the write fails).
        let s = 0.02;
        let net_soft = s * (1.0 + (net / s).exp()).ln();
        let net_soft = if net / s > 40.0 { net } else { net_soft };

        // The second half of the flip is completed by the cross-coupled
        // inverter pair; a skewed right inverter modulates it weakly.
        let trip_skew = 1.0 + 0.06 * (d_pdr - d_pur) / self.vdd;

        (self.t_write_nominal * (net0 / net_soft).max(0.0) * trip_skew).min(self.time_ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deltas_with(which: CellTransistor, value: f64) -> [f64; 6] {
        let mut d = [0.0; 6];
        d[which.index()] = value;
        d
    }

    #[test]
    fn nominal_values_match_configuration() {
        let s = SramSurrogate::typical_45nm();
        let t_read = s.read_access_time(&[0.0; 6]);
        let t_write = s.write_delay(&[0.0; 6]);
        assert!((t_read - s.t_read_nominal).abs() / s.t_read_nominal < 1e-9);
        assert!((t_write - s.t_write_nominal).abs() / s.t_write_nominal < 1e-9);
        assert_eq!(s, SramSurrogate::default());
    }

    #[test]
    fn read_time_increases_with_weak_read_path() {
        let s = SramSurrogate::typical_45nm();
        let nominal = s.read_access_time(&[0.0; 6]);
        for which in [CellTransistor::PassGateLeft, CellTransistor::PullDownLeft] {
            let slow = s.read_access_time(&deltas_with(which, 0.1));
            assert!(slow > nominal, "{which:?} +100mV should slow the read");
            let fast = s.read_access_time(&deltas_with(which, -0.1));
            assert!(fast < nominal, "{which:?} -100mV should speed the read");
        }
    }

    #[test]
    fn read_time_diverges_for_dead_path() {
        let s = SramSurrogate::typical_45nm();
        let dead = s.read_access_time(&deltas_with(CellTransistor::PassGateLeft, 0.6));
        assert!(dead > 50.0 * s.t_read_nominal);
        assert!(dead <= s.time_ceiling);
    }

    #[test]
    fn read_time_is_monotone_in_pass_gate_delta() {
        let s = SramSurrogate::typical_45nm();
        let mut prev = 0.0;
        let mut delta = -0.2;
        while delta <= 0.4 {
            let t = s.read_access_time(&deltas_with(CellTransistor::PassGateLeft, delta));
            assert!(t >= prev, "not monotone at {delta}");
            prev = t;
            delta += 0.01;
        }
    }

    #[test]
    fn write_delay_increases_with_contention() {
        let s = SramSurrogate::typical_45nm();
        let nominal = s.write_delay(&[0.0; 6]);
        // Weaker pass gate slows the write.
        assert!(s.write_delay(&deltas_with(CellTransistor::PassGateLeft, 0.1)) > nominal);
        // Stronger pull-up (negative delta) also slows the write.
        assert!(s.write_delay(&deltas_with(CellTransistor::PullUpLeft, -0.1)) > nominal);
        // Weaker pull-up makes the write easier.
        assert!(s.write_delay(&deltas_with(CellTransistor::PullUpLeft, 0.1)) < nominal);
    }

    #[test]
    fn write_delay_diverges_when_contention_wins() {
        let s = SramSurrogate::typical_45nm();
        let mut d = [0.0; 6];
        d[CellTransistor::PassGateLeft.index()] = 0.4;
        d[CellTransistor::PullUpLeft.index()] = -0.3;
        let blocked = s.write_delay(&d);
        assert!(blocked > 100.0 * s.t_write_nominal);
    }

    #[test]
    fn disturb_voltage_behaviour() {
        let s = SramSurrogate::typical_45nm();
        let nominal = s.read_disturb_voltage(&[0.0; 6]);
        assert!(nominal > 0.0 && nominal < s.vdd / 2.0);
        // Weak pull-down raises the disturb level.
        let weak_pd = s.read_disturb_voltage(&deltas_with(CellTransistor::PullDownLeft, 0.2));
        assert!(weak_pd > nominal);
        // Weak pass gate lowers it.
        let weak_pg = s.read_disturb_voltage(&deltas_with(CellTransistor::PassGateLeft, 0.2));
        assert!(weak_pg < nominal);
    }

    #[test]
    fn metrics_are_finite_for_extreme_inputs() {
        let s = SramSurrogate::typical_45nm();
        let extreme = [0.8, 0.8, -0.8, 0.8, -0.8, 0.8];
        assert!(s.read_access_time(&extreme).is_finite());
        assert!(s.write_delay(&extreme).is_finite());
        assert!(s.read_disturb_voltage(&extreme).is_finite());
    }

    #[test]
    #[should_panic(expected = "expected 6 threshold deltas")]
    fn wrong_delta_count_panics() {
        let _ = SramSurrogate::typical_45nm().read_access_time(&[0.0; 3]);
    }

    #[test]
    fn calibration_against_testbench() {
        let tb = SramTestbench::typical_45nm();
        let s = SramSurrogate::calibrated_to(&tb).unwrap();
        let r = tb.read(&[0.0; 6]).unwrap();
        let w = tb.write(&[0.0; 6]).unwrap();
        assert!((s.t_read_nominal - r.access_time).abs() / r.access_time < 1e-9);
        assert!((s.t_write_nominal - w.write_delay).abs() / w.write_delay < 1e-9);
    }
}
