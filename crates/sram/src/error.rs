//! Error type for the SRAM testbench layer.

use gis_circuit::CircuitError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or simulating SRAM testbenches.
#[derive(Debug, Clone, PartialEq)]
pub enum SramError {
    /// The cell or testbench configuration is inconsistent.
    InvalidConfig(String),
    /// The underlying circuit simulation failed.
    Circuit(CircuitError),
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::InvalidConfig(msg) => write!(f, "invalid SRAM configuration: {msg}"),
            SramError::Circuit(e) => write!(f, "circuit simulation failed: {e}"),
        }
    }
}

impl Error for SramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SramError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SramError {
    fn from(e: CircuitError) -> Self {
        SramError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SramError::InvalidConfig("bad vdd".to_string());
        assert!(e.to_string().contains("bad vdd"));
        assert!(e.source().is_none());

        let e: SramError = CircuitError::InvalidAnalysis("x".to_string()).into();
        assert!(e.to_string().contains("circuit simulation failed"));
        assert!(e.source().is_some());
    }
}
