//! Phase-by-phase timing of the transient kernels on the read testbench.
//!
//! Not a benchmark artifact — a diagnostic for kernel work. Run with
//! `cargo run --release -p gis-sram --example profile_lockstep`.

// A throwaway diagnostic: aborting on a malformed fixture is the right move.
#![allow(clippy::unwrap_used)]

use std::time::Instant;

use gis_circuit::mna::MAX_NEWTON_ITERATIONS;
use gis_circuit::{
    Circuit, LockstepWorkspace, MnaSystem, MosfetParams, SimulationWorkspace, SourceWaveform,
    TransientKernel,
};
use gis_sram::{build_6t_cell, SramCellConfig, SramTestbench};

fn deltas_for(i: usize) -> [f64; 6] {
    let mut d = [0.0; 6];
    for (j, v) in d.iter_mut().enumerate() {
        *v = 0.02 * ((i * 6 + j) as f64 * 0.7).sin();
    }
    d
}

fn main() {
    let tb = SramTestbench::typical_45nm();
    let samples: Vec<[f64; 6]> = (0..64).map(deltas_for).collect();
    let refs: Vec<&[f64]> = samples.iter().map(|d| d.as_slice()).collect();

    // Scalar sparse baseline.
    let mut session = tb.read_session().unwrap();
    session.run(&samples[0]).unwrap(); // warm
    let t0 = Instant::now();
    for d in &samples {
        session.run(d).unwrap();
    }
    let scalar = t0.elapsed();
    println!(
        "scalar sparse : {:>8.2?} total, {:>8.2?}/eval",
        scalar,
        scalar / 64
    );

    for kernel in [TransientKernel::Lockstep, TransientKernel::Fast] {
        let mut session = tb.read_session().unwrap().with_kernel(kernel);
        session.run_batch(&refs[..4]); // warm
        let t0 = Instant::now();
        let out = session.run_batch(&refs);
        let dt = t0.elapsed();
        assert!(out.iter().all(Result::is_ok));
        println!(
            "{:<14}: {:>8.2?} total, {:>8.2?}/eval ({:.2}x vs scalar)",
            kernel.name(),
            dt,
            dt / 64,
            scalar.as_secs_f64() / dt.as_secs_f64()
        );
    }

    // Warm Newton microbenchmark: per-iteration kernel cost, scalar vs
    // four-lane lockstep (warm solves converge in one iteration, so this
    // times one stamp + factorize + solve + update round).
    let cfg = SramCellConfig::typical_45nm();
    let make = |shift: f64| -> Circuit {
        let mut ckt = Circuit::new();
        let nodes = build_6t_cell(&mut ckt, &cfg, &[shift; 6]).unwrap();
        ckt.add_voltage_source(
            "V_VDD",
            nodes.vdd,
            Circuit::ground(),
            SourceWaveform::dc(cfg.vdd),
        );
        ckt.add_voltage_source(
            "V_WL",
            nodes.wordline,
            Circuit::ground(),
            SourceWaveform::dc(cfg.vdd),
        );
        ckt.add_capacitor(
            "C_BL",
            nodes.bitline,
            Circuit::ground(),
            cfg.bitline_capacitance,
        )
        .unwrap();
        ckt.add_capacitor(
            "C_BLB",
            nodes.bitline_bar,
            Circuit::ground(),
            cfg.bitline_capacitance,
        )
        .unwrap();
        ckt
    };
    let owned: Vec<Circuit> = (0..4).map(|l| make(0.005 * l as f64)).collect();
    let reps = 100_000u32;

    let system = MnaSystem::new(&owned[0]).unwrap();
    let mut ws = SimulationWorkspace::new();
    system
        .solve_newton_in(&mut ws, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
        .unwrap();
    let t0 = Instant::now();
    for _ in 0..reps {
        system
            .solve_newton_in(&mut ws, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
            .unwrap();
    }
    let scalar_it = t0.elapsed() / reps;
    println!("warm dc solve : scalar {scalar_it:>8.2?}/solve");

    let circuits: Vec<&Circuit> = owned.iter().collect();
    let mut lws = LockstepWorkspace::new();
    let mut errors = vec![None; 4];
    let mut iters = [0usize; 4];
    let mut alive = [true; 4];
    system.solve_newton_lockstep_in(
        &mut lws,
        &circuits,
        0.0,
        None,
        "dc",
        MAX_NEWTON_ITERATIONS,
        false,
        &mut alive,
        &mut errors,
        &mut iters,
    );
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut alive = [true; 4];
        system.solve_newton_lockstep_in(
            &mut lws,
            &circuits,
            0.0,
            None,
            "dc",
            MAX_NEWTON_ITERATIONS,
            false,
            &mut alive,
            &mut errors,
            &mut iters,
        );
    }
    let lock_it = t0.elapsed() / reps;
    println!(
        "warm dc solve : lockstep-4 {lock_it:>8.2?}/solve, {:>8.2?}/lane ({:.2}x vs scalar)",
        lock_it / 4,
        scalar_it.as_secs_f64() / (lock_it / 4).as_secs_f64()
    );

    let mut fws = LockstepWorkspace::new();
    system.solve_newton_lockstep_in(
        &mut fws,
        &circuits,
        0.0,
        None,
        "dc",
        MAX_NEWTON_ITERATIONS,
        true,
        &mut [true; 4],
        &mut errors,
        &mut iters,
    );
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut alive = [true; 4];
        system.solve_newton_lockstep_in(
            &mut fws,
            &circuits,
            0.0,
            None,
            "dc",
            MAX_NEWTON_ITERATIONS,
            true,
            &mut alive,
            &mut errors,
            &mut iters,
        );
    }
    let fast_it = t0.elapsed() / reps;
    println!(
        "warm dc solve : fast-4     {fast_it:>8.2?}/solve, {:>8.2?}/lane ({:.2}x vs scalar)",
        fast_it / 4,
        scalar_it.as_secs_f64() / (fast_it / 4).as_secs_f64()
    );

    // LU microbenchmark: clear+stamp+factorize+solve on an SRAM-like pattern,
    // four scalar solves vs one four-lane lockstep call.
    {
        use gis_linalg::sparse::{LockstepLu, PatternBuilder, SparseLu, SymbolicLu};
        let n = 12usize;
        let mut pb = PatternBuilder::new(n);
        let mut entries: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            entries.push((i, i));
        }
        // MOSFET-style 4-node cliques plus voltage-source borders.
        for clique in [[0usize, 1, 2, 3], [2, 3, 4, 5], [4, 5, 6, 7], [5, 6, 7, 8]] {
            for &r in &clique {
                for &c in &clique {
                    entries.push((r, c));
                }
            }
        }
        for (r, c) in [(0, 9), (9, 0), (4, 10), (10, 4), (8, 11), (11, 8)] {
            entries.push((r, c));
        }
        entries.sort_unstable();
        entries.dedup();
        for &(r, c) in &entries {
            pb.insert(r, c);
        }
        let symbolic = SymbolicLu::analyze(&pb.build());
        let values: Vec<[f64; 4]> = entries
            .iter()
            .map(|&(r, c)| {
                let mut v = [0.0; 4];
                for (lane, out) in v.iter_mut().enumerate() {
                    *out = if r == c {
                        10.0 + r as f64 + 0.01 * lane as f64
                    } else {
                        ((r * 31 + c * 7 + lane) as f64 * 0.37).sin()
                    };
                }
                v
            })
            .collect();
        let reps = 200_000u32;

        let mut lu = SparseLu::new(symbolic.clone());
        let mut x = vec![0.0; n];
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            for lane in 0..4 {
                lu.clear();
                for (&(r, c), v) in entries.iter().zip(&values) {
                    lu.add_at(r, c, v[lane]);
                }
                lu.factorize().unwrap();
                lu.solve(&b, &mut x).unwrap();
            }
        }
        let scalar_lu = t0.elapsed() / reps;
        println!("lu 4 solves   : scalar {scalar_lu:>8.2?}");

        let mut llu = LockstepLu::new(symbolic, 4);
        let mut xl = vec![0.0; n * 4];
        let bl: Vec<f64> = (0..n * 4).map(|i| 1.0 + (i / 4) as f64).collect();
        let active = [true; 4];
        let t0 = Instant::now();
        for _ in 0..reps {
            llu.clear();
            for (&(r, c), v) in entries.iter().zip(&values) {
                for (lane, &vl) in v.iter().enumerate() {
                    llu.add_at(r, c, lane, vl);
                }
            }
            llu.factorize(&active);
            for lane in 0..4 {
                llu.lane_result(lane).unwrap();
            }
            llu.solve(&bl, &mut xl, &active).unwrap();
        }
        let lock_lu = t0.elapsed() / reps;
        println!(
            "lu 4 solves   : lockstep {lock_lu:>8.2?} ({:.2}x vs scalar)",
            scalar_lu.as_secs_f64() / lock_lu.as_secs_f64()
        );
    }

    // Compact-model microbenchmark: exact vs fast transcendentals.
    let p = MosfetParams::nmos_45nm();
    let n = 2_000_000usize;
    let mut acc = 0.0f64;
    let t0 = Instant::now();
    for i in 0..n {
        let vgs = 0.1 + 0.9 * ((i % 1000) as f64 / 1000.0);
        acc += p.evaluate_normalized(vgs, 0.5, -0.05).id;
    }
    let exact = t0.elapsed();
    let mut acc2 = 0.0f64;
    let t0 = Instant::now();
    for i in 0..n {
        let vgs = 0.1 + 0.9 * ((i % 1000) as f64 / 1000.0);
        acc2 += p.evaluate_normalized_fast(vgs, 0.5, -0.05).id;
    }
    let fast = t0.elapsed();
    println!(
        "model eval    : exact {:>6.2?} fast {:>6.2?} ({:.2}x) [{acc:.3e} {acc2:.3e}]",
        exact / n as u32,
        fast / n as u32,
        exact.as_secs_f64() / fast.as_secs_f64()
    );
}
