//! Process-variation modelling for statistical SRAM analysis.
//!
//! The dominant variation mechanism for minimum-size SRAM transistors is local
//! threshold-voltage mismatch caused by random dopant fluctuation. Its standard
//! deviation follows the Pelgrom law `σ(ΔV_T) = A_VT / sqrt(W·L)`. This crate
//! provides:
//!
//! * [`PelgromModel`] — the mismatch coefficient and the σ(ΔV_T) it implies for
//!   a given device geometry,
//! * [`VariationParameter`] / [`VariationSpace`] — the mapping between the
//!   *whitened* space (independent standard normal `z` variables, where all
//!   estimators operate) and physical parameter deltas (ΔV_T per transistor),
//!   optionally with a correlation structure, and
//! * [`GlobalCorner`] — systematic (die-to-die) shifts that can be layered on
//!   top of the local mismatch.
//!
//! # Example
//!
//! ```
//! use gis_variation::{PelgromModel, VariationSpace, VariationParameter};
//! use gis_stats::RngStream;
//!
//! let pelgrom = PelgromModel::new(2.5e-9); // 2.5 mV·µm
//! let sigma = pelgrom.sigma_vth(90e-9, 45e-9);
//! let space = VariationSpace::independent(
//!     (0..6).map(|i| VariationParameter::new(format!("M{i}.dVth"), sigma)),
//! );
//! let mut rng = RngStream::from_seed(1);
//! let (z, deltas) = space.sample(&mut rng);
//! assert_eq!(z.len(), 6);
//! assert_eq!(deltas.len(), 6);
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

use gis_linalg::{Cholesky, Matrix, Vector};
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// Error type for variation-space construction.
#[derive(Debug, Clone, PartialEq)]
pub enum VariationError {
    /// An argument was invalid (empty parameter list, non-positive sigma, …).
    InvalidArgument(String),
    /// The supplied correlation matrix is not valid (wrong size or not SPD).
    InvalidCorrelation(String),
}

impl std::fmt::Display for VariationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VariationError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            VariationError::InvalidCorrelation(m) => write!(f, "invalid correlation matrix: {m}"),
        }
    }
}

impl std::error::Error for VariationError {}

/// Pelgrom mismatch model for threshold voltage variation.
///
/// `σ(ΔV_T) = A_VT / sqrt(W · L)` with `A_VT` in V·m (e.g. `2.5e-9` V·m
/// ≡ 2.5 mV·µm, a typical 45 nm-class value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PelgromModel {
    a_vt: f64,
}

impl PelgromModel {
    /// Creates a model with the mismatch coefficient `a_vt` in V·m.
    ///
    /// # Panics
    ///
    /// Panics if `a_vt` is not positive and finite.
    pub fn new(a_vt: f64) -> Self {
        assert!(
            a_vt > 0.0 && a_vt.is_finite(),
            "Pelgrom coefficient must be positive and finite"
        );
        PelgromModel { a_vt }
    }

    /// Typical coefficient for a 45 nm-class low-power process (2.5 mV·µm).
    pub fn typical_45nm() -> Self {
        PelgromModel::new(2.5e-9)
    }

    /// The mismatch coefficient `A_VT` in V·m.
    pub fn a_vt(&self) -> f64 {
        self.a_vt
    }

    /// Standard deviation of ΔV_T in volts for a device of the given width and
    /// length (metres).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `length` is not positive.
    pub fn sigma_vth(&self, width: f64, length: f64) -> f64 {
        assert!(
            width > 0.0 && length > 0.0,
            "device geometry must be positive"
        );
        self.a_vt / (width * length).sqrt()
    }
}

/// Systematic process corners applied on top of local mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalCorner {
    /// Typical NMOS, typical PMOS.
    TypicalTypical,
    /// Fast NMOS, fast PMOS (lower thresholds).
    FastFast,
    /// Slow NMOS, slow PMOS (higher thresholds).
    SlowSlow,
    /// Fast NMOS, slow PMOS.
    FastSlow,
    /// Slow NMOS, fast PMOS.
    SlowFast,
}

impl GlobalCorner {
    /// Systematic threshold shift `(ΔV_T,NMOS, ΔV_T,PMOS)` in volts, using a
    /// global spread of `magnitude` volts.
    pub fn vth_shifts(self, magnitude: f64) -> (f64, f64) {
        match self {
            GlobalCorner::TypicalTypical => (0.0, 0.0),
            GlobalCorner::FastFast => (-magnitude, -magnitude),
            GlobalCorner::SlowSlow => (magnitude, magnitude),
            GlobalCorner::FastSlow => (-magnitude, magnitude),
            GlobalCorner::SlowFast => (magnitude, -magnitude),
        }
    }

    /// All five corners, convenient for sweeps.
    pub fn all() -> [GlobalCorner; 5] {
        [
            GlobalCorner::TypicalTypical,
            GlobalCorner::FastFast,
            GlobalCorner::SlowSlow,
            GlobalCorner::FastSlow,
            GlobalCorner::SlowFast,
        ]
    }
}

/// One scalar process parameter subject to variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationParameter {
    /// Human-readable name, e.g. `"M_PGL.dVth"`.
    pub name: String,
    /// Physical standard deviation (volts for ΔV_T).
    pub std_dev: f64,
}

impl VariationParameter {
    /// Creates a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is not positive and finite.
    pub fn new(name: impl Into<String>, std_dev: f64) -> Self {
        assert!(
            std_dev > 0.0 && std_dev.is_finite(),
            "standard deviation must be positive and finite"
        );
        VariationParameter {
            name: name.into(),
            std_dev,
        }
    }
}

/// The variation space: a named, ordered set of Gaussian process parameters and
/// the transform between whitened `z`-space and physical deltas.
///
/// All estimators in `gis-core` work in `z`-space, where the nominal design sits
/// at the origin and distance is measured in sigmas.
#[derive(Debug, Clone)]
pub struct VariationSpace {
    parameters: Vec<VariationParameter>,
    /// Cholesky factor of the correlation matrix (None = independent).
    correlation_chol: Option<Cholesky>,
}

impl VariationSpace {
    /// Creates a space of independent parameters.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields no parameters.
    pub fn independent(parameters: impl IntoIterator<Item = VariationParameter>) -> Self {
        let parameters: Vec<_> = parameters.into_iter().collect();
        assert!(
            !parameters.is_empty(),
            "variation space needs at least one parameter"
        );
        VariationSpace {
            parameters,
            correlation_chol: None,
        }
    }

    /// Creates a space of correlated parameters from a correlation matrix
    /// (unit diagonal, symmetric positive definite).
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidCorrelation`] if the matrix has the
    /// wrong size, an off-unit diagonal, or is not positive definite, and
    /// [`VariationError::InvalidArgument`] if no parameters are given.
    pub fn correlated(
        parameters: Vec<VariationParameter>,
        correlation: &Matrix,
    ) -> Result<Self, VariationError> {
        if parameters.is_empty() {
            return Err(VariationError::InvalidArgument(
                "variation space needs at least one parameter".to_string(),
            ));
        }
        let n = parameters.len();
        if correlation.shape() != (n, n) {
            return Err(VariationError::InvalidCorrelation(format!(
                "expected a {n}x{n} matrix, got {}x{}",
                correlation.rows(),
                correlation.cols()
            )));
        }
        for i in 0..n {
            if (correlation[(i, i)] - 1.0).abs() > 1e-9 {
                return Err(VariationError::InvalidCorrelation(format!(
                    "diagonal entry {i} is {}, expected 1",
                    correlation[(i, i)]
                )));
            }
        }
        let chol = Cholesky::new(correlation).map_err(|e| {
            VariationError::InvalidCorrelation(format!("not positive definite: {e}"))
        })?;
        Ok(VariationSpace {
            parameters,
            correlation_chol: Some(chol),
        })
    }

    /// Number of variation parameters (the dimension of `z`-space).
    pub fn dim(&self) -> usize {
        self.parameters.len()
    }

    /// The parameters, in order.
    pub fn parameters(&self) -> &[VariationParameter] {
        &self.parameters
    }

    /// Parameter names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.parameters.iter().map(|p| p.name.as_str()).collect()
    }

    /// Physical standard deviations, in order.
    pub fn std_devs(&self) -> Vector {
        self.parameters.iter().map(|p| p.std_dev).collect()
    }

    /// Maps a whitened point `z` to physical parameter deltas
    /// `Δ = diag(σ) · L · z` (with `L = I` for independent parameters).
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()`.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn to_physical(&self, z: &Vector) -> Vector {
        assert_eq!(z.len(), self.dim(), "dimension mismatch in to_physical");
        let correlated = match &self.correlation_chol {
            Some(chol) => chol.color(z).expect("dimension checked above"),
            None => z.clone(),
        };
        self.parameters
            .iter()
            .zip(correlated.iter())
            .map(|(p, &c)| p.std_dev * c)
            .collect()
    }

    /// Maps physical parameter deltas back to the whitened space (inverse of
    /// [`VariationSpace::to_physical`]).
    ///
    /// # Panics
    ///
    /// Panics if `deltas.len() != dim()`.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn to_whitened(&self, deltas: &Vector) -> Vector {
        assert_eq!(
            deltas.len(),
            self.dim(),
            "dimension mismatch in to_whitened"
        );
        let scaled: Vector = self
            .parameters
            .iter()
            .zip(deltas.iter())
            .map(|(p, &d)| d / p.std_dev)
            .collect();
        match &self.correlation_chol {
            Some(chol) => chol.whiten(&scaled).expect("dimension checked above"),
            None => scaled,
        }
    }

    /// Draws one sample: a whitened point and its physical deltas.
    pub fn sample(&self, rng: &mut RngStream) -> (Vector, Vector) {
        let z = rng.standard_normal_vector(self.dim());
        let physical = self.to_physical(&z);
        (z, physical)
    }

    /// Euclidean norm of a whitened point — its distance from the nominal
    /// design in sigmas, the quantity every high-sigma method tries to
    /// minimize when hunting for the most-probable failure point.
    pub fn sigma_distance(&self, z: &Vector) -> f64 {
        z.norm()
    }
}

/// Builds the canonical 6-transistor SRAM variation space: one ΔV_T parameter
/// per transistor with Pelgrom-scaled standard deviation.
///
/// The order of the parameters is fixed and matches
/// `gis-sram`: `[PGL, PDL, PUL, PGR, PDR, PUR]` (pass-gate, pull-down, pull-up;
/// left then right).
pub fn sram_6t_variation_space(
    pelgrom: &PelgromModel,
    widths_lengths: &[(f64, f64); 6],
) -> VariationSpace {
    const NAMES: [&str; 6] = [
        "PGL.dVth", "PDL.dVth", "PUL.dVth", "PGR.dVth", "PDR.dVth", "PUR.dVth",
    ];
    VariationSpace::independent(
        NAMES
            .iter()
            .zip(widths_lengths.iter())
            .map(|(name, (w, l))| VariationParameter::new(*name, pelgrom.sigma_vth(*w, *l))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelgrom_scaling() {
        let m = PelgromModel::new(2.5e-9);
        let s1 = m.sigma_vth(90e-9, 45e-9);
        let s2 = m.sigma_vth(180e-9, 45e-9);
        // Doubling the area by doubling W reduces sigma by sqrt(2).
        assert!((s1 / s2 - 2f64.sqrt()).abs() < 1e-12);
        // Typical 45nm minimum device lands in the tens of millivolts.
        assert!(s1 > 0.02 && s1 < 0.06, "sigma {s1}");
        assert_eq!(m.a_vt(), 2.5e-9);
        assert_eq!(PelgromModel::typical_45nm().a_vt(), 2.5e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn pelgrom_rejects_bad_coefficient() {
        let _ = PelgromModel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn pelgrom_rejects_bad_geometry() {
        let _ = PelgromModel::typical_45nm().sigma_vth(0.0, 45e-9);
    }

    #[test]
    fn corners() {
        assert_eq!(GlobalCorner::TypicalTypical.vth_shifts(0.03), (0.0, 0.0));
        assert_eq!(GlobalCorner::FastFast.vth_shifts(0.03), (-0.03, -0.03));
        assert_eq!(GlobalCorner::SlowSlow.vth_shifts(0.03), (0.03, 0.03));
        assert_eq!(GlobalCorner::FastSlow.vth_shifts(0.03), (-0.03, 0.03));
        assert_eq!(GlobalCorner::SlowFast.vth_shifts(0.03), (0.03, -0.03));
        assert_eq!(GlobalCorner::all().len(), 5);
    }

    #[test]
    fn independent_space_round_trip() {
        let space = VariationSpace::independent([
            VariationParameter::new("a", 0.01),
            VariationParameter::new("b", 0.05),
        ]);
        assert_eq!(space.dim(), 2);
        assert_eq!(space.names(), vec!["a", "b"]);
        assert_eq!(space.std_devs().as_slice(), &[0.01, 0.05]);
        let z = Vector::from_slice(&[2.0, -1.0]);
        let phys = space.to_physical(&z);
        assert!((phys[0] - 0.02).abs() < 1e-15);
        assert!((phys[1] + 0.05).abs() < 1e-15);
        let back = space.to_whitened(&phys);
        assert!((&back - &z).norm() < 1e-12);
        assert!((space.sigma_distance(&z) - 5f64.sqrt()).abs() < 1e-12);
        assert_eq!(space.parameters().len(), 2);
    }

    #[test]
    fn correlated_space_reproduces_correlation() {
        let corr = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]]).unwrap();
        let space = VariationSpace::correlated(
            vec![
                VariationParameter::new("a", 1.0),
                VariationParameter::new("b", 1.0),
            ],
            &corr,
        )
        .unwrap();
        let mut rng = RngStream::from_seed(5);
        let n = 50_000;
        let mut sum_ab = 0.0;
        let mut sum_aa = 0.0;
        let mut sum_bb = 0.0;
        for _ in 0..n {
            let (_, p) = space.sample(&mut rng);
            sum_ab += p[0] * p[1];
            sum_aa += p[0] * p[0];
            sum_bb += p[1] * p[1];
        }
        let corr_hat = sum_ab / (sum_aa.sqrt() * sum_bb.sqrt());
        assert!((corr_hat - 0.8).abs() < 0.02, "correlation {corr_hat}");
        // Round trip through the correlated transform.
        let z = Vector::from_slice(&[1.0, -2.0]);
        let back = space.to_whitened(&space.to_physical(&z));
        assert!((&back - &z).norm() < 1e-10);
    }

    #[test]
    fn correlated_space_validation() {
        let params = vec![
            VariationParameter::new("a", 1.0),
            VariationParameter::new("b", 1.0),
        ];
        // Wrong size.
        assert!(VariationSpace::correlated(params.clone(), &Matrix::identity(3)).is_err());
        // Non-unit diagonal.
        let bad = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert!(VariationSpace::correlated(params.clone(), &bad).is_err());
        // Not positive definite.
        let bad = Matrix::from_rows(&[&[1.0, 1.5], &[1.5, 1.0]]).unwrap();
        assert!(VariationSpace::correlated(params.clone(), &bad).is_err());
        // Empty parameters.
        assert!(VariationSpace::correlated(vec![], &Matrix::identity(0)).is_err());
        // Valid.
        assert!(VariationSpace::correlated(params, &Matrix::identity(2)).is_ok());
    }

    #[test]
    fn sample_moments() {
        let space = VariationSpace::independent([VariationParameter::new("a", 0.03)]);
        let mut rng = RngStream::from_seed(9);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (_, p) = space.sample(&mut rng);
            sum += p[0];
            sum_sq += p[0] * p[0];
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 5e-4);
        assert!((std - 0.03).abs() < 5e-4);
    }

    #[test]
    fn sram_space_has_six_parameters() {
        let pelgrom = PelgromModel::typical_45nm();
        let wl = [(90e-9, 45e-9); 6];
        let space = sram_6t_variation_space(&pelgrom, &wl);
        assert_eq!(space.dim(), 6);
        assert!(space.names()[0].contains("PGL"));
        assert!(space.names()[5].contains("PUR"));
    }

    #[test]
    fn error_display() {
        assert!(VariationError::InvalidArgument("x".into())
            .to_string()
            .contains('x'));
        assert!(VariationError::InvalidCorrelation("y".into())
            .to_string()
            .contains('y'));
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn independent_rejects_empty() {
        let _ = VariationSpace::independent(std::iter::empty());
    }
}
